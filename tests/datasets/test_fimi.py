"""Tests for FIMI format I/O and the double-buffered loader."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets import DoubleBufferedReader, read_fimi, write_fimi
from repro.datasets.fimi import iter_fimi
from repro.errors import DatasetError

db_ints = st.lists(
    st.lists(st.integers(min_value=0, max_value=99_999), min_size=1, max_size=20),
    max_size=40,
)


class TestRoundtrip:
    def test_simple(self, tmp_path):
        path = tmp_path / "data.fimi"
        db = [[1, 2, 3], [4], [10, 20]]
        assert write_fimi(path, db) == 3
        assert read_fimi(path) == db

    def test_empty_transactions_skipped(self, tmp_path):
        path = tmp_path / "data.fimi"
        assert write_fimi(path, [[1], [], [2]]) == 2
        assert read_fimi(path) == [[1], [2]]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.fimi"
        path.write_text("1 2\n\n3\n  \n")
        assert read_fimi(path) == [[1, 2], [3]]

    def test_bad_line_raises_with_location(self, tmp_path):
        path = tmp_path / "data.fimi"
        path.write_text("1 2\nfoo bar\n")
        with pytest.raises(DatasetError, match=":2:"):
            read_fimi(path)

    def test_negative_items_rejected_on_write(self, tmp_path):
        with pytest.raises(DatasetError):
            write_fimi(tmp_path / "x.fimi", [[-1]])

    def test_iter_is_lazy(self, tmp_path):
        path = tmp_path / "data.fimi"
        write_fimi(path, [[i] for i in range(100)])
        iterator = iter_fimi(path)
        assert next(iterator) == [0]
        assert next(iterator) == [1]

    @given(db_ints)
    def test_roundtrip_property(self, database):
        import os
        import tempfile

        fd, path = tempfile.mkstemp(suffix=".fimi")
        os.close(fd)
        try:
            write_fimi(path, database)
            assert read_fimi(path) == [t for t in database if t]
        finally:
            os.unlink(path)


class TestDoubleBufferedReader:
    def test_matches_plain_read(self, tmp_path):
        path = tmp_path / "data.fimi"
        db = [[i, i + 1, i + 2] for i in range(500)]
        write_fimi(path, db)
        with DoubleBufferedReader(path) as reader:
            assert list(reader) == db

    def test_small_blocks_split_lines_correctly(self, tmp_path):
        path = tmp_path / "data.fimi"
        db = [[12345, 67890], [11111], [22222, 33333, 44444]]
        write_fimi(path, db)
        # Block smaller than a line forces the carry logic.
        with DoubleBufferedReader(path, block_bytes=4) as reader:
            assert list(reader) == db

    def test_empty_file(self, tmp_path):
        path = tmp_path / "data.fimi"
        path.write_text("")
        with DoubleBufferedReader(path) as reader:
            assert list(reader) == []

    def test_missing_file_raises(self, tmp_path):
        with DoubleBufferedReader(tmp_path / "missing.fimi") as reader:
            with pytest.raises(DatasetError):
                list(reader)

    def test_requires_context_manager(self, tmp_path):
        path = tmp_path / "data.fimi"
        write_fimi(path, [[1]])
        reader = DoubleBufferedReader(path)
        with pytest.raises(DatasetError):
            list(reader)

    def test_invalid_block_size(self):
        with pytest.raises(DatasetError):
            DoubleBufferedReader("x", block_bytes=0)
