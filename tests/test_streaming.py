"""Tests for the two-phase streaming build."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cfp_growth import cfp_growth
from repro.errors import DatasetError
from repro.streaming import CountingPhase, StreamingBuilder, mine_in_batches
from tests.conftest import db_strategy, normalize, random_database


def batched(database, size):
    return [database[i : i + size] for i in range(0, len(database), size)]


class TestCountingPhase:
    def test_accumulates_across_batches(self):
        phase = CountingPhase()
        phase.add_batch([[1, 2], [1]])
        phase.add_batch([[2], [1, 2, 3]])
        table = phase.finish(min_support=2)
        assert table.supports == {1: 3, 2: 3}
        assert phase.transactions_seen == 4

    def test_duplicates_in_transaction_count_once(self):
        phase = CountingPhase()
        phase.add_batch([[1, 1, 1]])
        assert phase.finish(1).supports == {1: 1}

    def test_validation(self):
        with pytest.raises(DatasetError):
            CountingPhase().finish(0)


class TestStreamingBuilder:
    def test_matches_one_shot(self):
        db = random_database(13, n_transactions=90, n_items=12, max_length=8)
        expected = normalize(cfp_growth(db, 3))
        for batch_size in (1, 7, 30, 200):
            results = mine_in_batches(batched(db, batch_size), 3)
            assert normalize(results) == expected, batch_size

    def test_checkpoint_between_batches(self, tmp_path):
        db = random_database(14, n_transactions=60, n_items=10, max_length=7)
        expected = normalize(cfp_growth(db, 2))
        phase = CountingPhase()
        phase.add_batch(db)
        table = phase.finish(2)
        builder = StreamingBuilder(table)
        builder.add_batch(db[:30])
        path = tmp_path / "stream.cfpt"
        builder.checkpoint(path)
        resumed = StreamingBuilder.resume(table, path)
        resumed.add_batch(db[30:])
        assert normalize(resumed.finish()) == expected

    def test_resume_validates_table(self, tmp_path):
        db = [[1, 2], [1, 2], [2]]
        phase = CountingPhase()
        phase.add_batch(db)
        table = phase.finish(2)
        builder = StreamingBuilder(table)
        builder.add_batch(db)
        path = tmp_path / "stream.cfpt"
        builder.checkpoint(path)
        other = CountingPhase()
        other.add_batch([[1, 2, 3], [1, 2, 3]])
        wrong_table = other.finish(1)
        with pytest.raises(DatasetError):
            StreamingBuilder.resume(wrong_table, path)

    def test_resume_restores_batch_cursor(self, tmp_path):
        # Regression: resume() used to reset batches_consumed to 0, so a
        # resumed pipeline re-fed already-consumed batches (or mislabeled
        # progress). The cursor must survive the suspend/resume cycle.
        db = random_database(15, n_transactions=40, n_items=9, max_length=6)
        phase = CountingPhase()
        phase.add_batch(db)
        table = phase.finish(2)
        builder = StreamingBuilder(table)
        builder.add_batch(db[:10])
        builder.add_batch(db[10:20])
        assert builder.batches_consumed == 2
        path = tmp_path / "stream.cfpt"
        builder.checkpoint(path)
        resumed = StreamingBuilder.resume(table, path)
        assert resumed.batches_consumed == 2
        resumed.add_batch(db[20:])
        assert resumed.batches_consumed == 3

    def test_resume_rejects_same_length_different_table(self, tmp_path):
        # Regression: the old check compared only len(table), so a table
        # with the same number of ranks but different items/ranking slid
        # through and silently remapped every rank.
        db = [[1, 2], [1, 2], [1]]
        phase = CountingPhase()
        phase.add_batch(db)
        table = phase.finish(2)  # items {1, 2}
        builder = StreamingBuilder(table)
        builder.add_batch(db)
        path = tmp_path / "stream.cfpt"
        builder.checkpoint(path)
        other = CountingPhase()
        other.add_batch([[1, 3], [1, 3], [1]])
        wrong_table = other.finish(2)  # items {1, 3} — same length
        assert len(wrong_table) == len(table)
        with pytest.raises(DatasetError, match="fingerprint"):
            StreamingBuilder.resume(wrong_table, path)

    def test_resume_accepts_legacy_checkpoint(self, tmp_path):
        # Checkpoints written before the batch cursor / fingerprint were
        # recorded must still resume (cursor defaults to 0).
        from repro.storage import save_cfp_tree

        db = [[1, 2], [1, 2], [2]]
        phase = CountingPhase()
        phase.add_batch(db)
        table = phase.finish(2)
        builder = StreamingBuilder(table)
        builder.add_batch(db)
        path = tmp_path / "legacy.cfpt"
        save_cfp_tree(builder.tree, path)  # no extra metadata
        resumed = StreamingBuilder.resume(table, path)
        assert resumed.batches_consumed == 0
        assert resumed.tree.n_ranks == builder.tree.n_ranks

    def test_insert_count_reported(self):
        phase = CountingPhase()
        phase.add_batch([[1], [1], [2]])
        table = phase.finish(2)  # only item 1 survives
        builder = StreamingBuilder(table)
        assert builder.add_batch([[1], [2], [1, 2]]) == 2  # [2] drops out

    @settings(max_examples=20, deadline=None)
    @given(db_strategy, st.integers(min_value=1, max_value=10))
    def test_property_batching_invariant(self, database, batch_size):
        expected = normalize(cfp_growth(database, 2))
        results = mine_in_batches(batched(database, batch_size), 2)
        assert normalize(results) == expected
