"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets.fimi import write_fimi


@pytest.fixture
def data_file(tmp_path):
    path = tmp_path / "data.fimi"
    write_fimi(
        path,
        [[1, 2, 3], [1, 2], [2, 3], [1, 2, 3], [2]],
    )
    return str(path)


class TestMine:
    def test_basic(self, data_file, capsys):
        assert main(["mine", data_file, "--min-support", "3"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert any(line.startswith("5\t2") for line in lines)  # item 2 x5

    def test_algorithm_choice(self, data_file, capsys):
        assert main(
            ["mine", data_file, "--min-support", "3", "--algorithm", "lcm"]
        ) == 0
        default = capsys.readouterr().out
        assert main(["mine", data_file, "--min-support", "3"]) == 0
        assert sorted(capsys.readouterr().out.splitlines()) == sorted(
            default.splitlines()
        )

    def test_closed(self, data_file, capsys):
        assert main(["mine", data_file, "--min-support", "2", "--closed"]) == 0
        closed = len(capsys.readouterr().out.splitlines())
        assert main(["mine", data_file, "--min-support", "2"]) == 0
        frequent = len(capsys.readouterr().out.splitlines())
        assert closed <= frequent

    def test_maximal(self, data_file, capsys):
        assert main(["mine", data_file, "--min-support", "2", "--maximal"]) == 0
        out = capsys.readouterr().out
        assert "1 2 3" in out

    def test_top_k(self, data_file, capsys):
        assert main(["mine", data_file, "--top-k", "2"]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) == 2

    def test_limit(self, data_file, capsys):
        assert main(["mine", data_file, "--min-support", "2", "--limit", "1"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 1

    def test_missing_file(self, capsys):
        assert main(["mine", "/nonexistent.fimi"]) == 1
        assert "error" in capsys.readouterr().err


class TestStats:
    def test_stats(self, data_file, capsys):
        assert main(["stats", data_file]) == 0
        out = capsys.readouterr().out
        assert "transactions:     5" in out
        assert "distinct items:   3" in out


class TestConvert:
    def test_text_to_binary_and_back(self, data_file, tmp_path, capsys):
        binary = str(tmp_path / "data.bin")
        assert main(["convert", data_file, binary]) == 0
        text2 = str(tmp_path / "back.fimi")
        assert main(["convert", binary, text2]) == 0
        capsys.readouterr()  # drain the convert messages
        # Mining the roundtripped file gives identical output.
        assert main(["mine", data_file, "--min-support", "2"]) == 0
        original = capsys.readouterr().out
        assert main(["mine", text2, "--min-support", "2"]) == 0
        assert capsys.readouterr().out == original

    def test_binary_is_smaller(self, data_file, tmp_path, capsys):
        import os

        binary = str(tmp_path / "data.bin")
        assert main(["convert", data_file, binary]) == 0
        assert os.path.getsize(binary) < os.path.getsize(data_file) + 20


class TestExperiment:
    def test_runs_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "nope"])


class TestJobs:
    def test_parallel_mine_matches_serial(self, data_file, capsys):
        assert main(["mine", data_file, "--min-support", "2"]) == 0
        serial = capsys.readouterr().out
        assert main(["mine", data_file, "--min-support", "2", "--jobs", "3"]) == 0
        assert capsys.readouterr().out == serial

    def test_jobs_warns_for_serial_only_miner(self, data_file, capsys):
        assert main(
            ["mine", data_file, "--min-support", "2", "--algorithm", "lcm",
             "--jobs", "4"]
        ) == 0
        assert "--jobs ignored" in capsys.readouterr().err


class TestBench:
    def test_bench_dispatches_with_passthrough_args(self, tmp_path, capsys):
        # The bench subcommand forwards everything to repro.bench.main —
        # --help must come from the bench parser, not the repro parser.
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--help"])
        assert excinfo.value.code == 0
        assert "--tolerance" in capsys.readouterr().out
