"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets.fimi import write_fimi


@pytest.fixture
def data_file(tmp_path):
    path = tmp_path / "data.fimi"
    write_fimi(
        path,
        [[1, 2, 3], [1, 2], [2, 3], [1, 2, 3], [2]],
    )
    return str(path)


class TestMine:
    def test_basic(self, data_file, capsys):
        assert main(["mine", data_file, "--min-support", "3"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert any(line.startswith("5\t2") for line in lines)  # item 2 x5

    def test_algorithm_choice(self, data_file, capsys):
        assert main(
            ["mine", data_file, "--min-support", "3", "--algorithm", "lcm"]
        ) == 0
        default = capsys.readouterr().out
        assert main(["mine", data_file, "--min-support", "3"]) == 0
        assert sorted(capsys.readouterr().out.splitlines()) == sorted(
            default.splitlines()
        )

    def test_closed(self, data_file, capsys):
        assert main(["mine", data_file, "--min-support", "2", "--closed"]) == 0
        closed = len(capsys.readouterr().out.splitlines())
        assert main(["mine", data_file, "--min-support", "2"]) == 0
        frequent = len(capsys.readouterr().out.splitlines())
        assert closed <= frequent

    def test_maximal(self, data_file, capsys):
        assert main(["mine", data_file, "--min-support", "2", "--maximal"]) == 0
        out = capsys.readouterr().out
        assert "1 2 3" in out

    def test_top_k(self, data_file, capsys):
        assert main(["mine", data_file, "--top-k", "2"]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) == 2

    def test_limit(self, data_file, capsys):
        assert main(["mine", data_file, "--min-support", "2", "--limit", "1"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 1

    def test_missing_file(self, capsys):
        assert main(["mine", "/nonexistent.fimi"]) == 1
        assert "error" in capsys.readouterr().err


class TestStats:
    def test_stats(self, data_file, capsys):
        assert main(["stats", data_file]) == 0
        out = capsys.readouterr().out
        assert "transactions:     5" in out
        assert "distinct items:   3" in out


class TestConvert:
    def test_text_to_binary_and_back(self, data_file, tmp_path, capsys):
        binary = str(tmp_path / "data.bin")
        assert main(["convert", data_file, binary]) == 0
        text2 = str(tmp_path / "back.fimi")
        assert main(["convert", binary, text2]) == 0
        capsys.readouterr()  # drain the convert messages
        # Mining the roundtripped file gives identical output.
        assert main(["mine", data_file, "--min-support", "2"]) == 0
        original = capsys.readouterr().out
        assert main(["mine", text2, "--min-support", "2"]) == 0
        assert capsys.readouterr().out == original

    def test_binary_is_smaller(self, data_file, tmp_path, capsys):
        import os

        binary = str(tmp_path / "data.bin")
        assert main(["convert", data_file, binary]) == 0
        assert os.path.getsize(binary) < os.path.getsize(data_file) + 20


class TestExperiment:
    def test_runs_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "nope"])


class TestJobs:
    def test_parallel_mine_matches_serial(self, data_file, capsys):
        assert main(["mine", data_file, "--min-support", "2"]) == 0
        serial = capsys.readouterr().out
        assert main(["mine", data_file, "--min-support", "2", "--jobs", "3"]) == 0
        assert capsys.readouterr().out == serial

    def test_jobs_warns_for_serial_only_miner(self, data_file, capsys):
        assert main(
            ["mine", data_file, "--min-support", "2", "--algorithm", "lcm",
             "--jobs", "4"]
        ) == 0
        assert "--jobs ignored" in capsys.readouterr().err


class TestBench:
    def test_bench_dispatches_with_passthrough_args(self, tmp_path, capsys):
        # The bench subcommand forwards everything to repro.bench.main —
        # --help must come from the bench parser, not the repro parser.
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--help"])
        assert excinfo.value.code == 0
        assert "--tolerance" in capsys.readouterr().out


class TestTrace:
    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        from repro import obs

        obs.set_tracer(None)
        obs.metrics.reset()
        yield
        obs.set_tracer(None)
        obs.metrics.reset()

    def _validator(self):
        import importlib.util
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "check_trace", root / "tools" / "check_trace.py"
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)
        return module

    def test_mine_trace_writes_valid_file(self, data_file, tmp_path, capsys):
        trace = tmp_path / "mine.jsonl"
        assert main(
            ["mine", data_file, "--min-support", "2", "--trace", str(trace)]
        ) == 0
        captured = capsys.readouterr()
        assert "trace" in captured.err
        assert self._validator().validate_trace(trace) == []

    def test_mine_trace_restores_tracer(self, data_file, tmp_path, capsys):
        from repro import obs

        trace = tmp_path / "mine.jsonl"
        assert main(
            ["mine", data_file, "--min-support", "2", "--trace", str(trace)]
        ) == 0
        assert obs.get_tracer() is None

    def test_stats_renders_trace_file(self, data_file, tmp_path, capsys):
        trace = tmp_path / "mine.jsonl"
        assert main(
            ["mine", data_file, "--min-support", "2", "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace v1" in out
        assert "meter totals" in out

    def test_parallel_trace_merges_worker_spans(
        self, data_file, tmp_path, monkeypatch
    ):
        from repro.obs.report import read_trace

        # The fixture database is tiny; disable the small-array serial
        # fallback so --jobs 2 actually fans out.
        monkeypatch.setenv("REPRO_PARALLEL_MIN_BYTES", "0")
        trace = tmp_path / "par.jsonl"
        assert main(
            ["mine", data_file, "--min-support", "2", "--jobs", "2",
             "--trace", str(trace)]
        ) == 0
        spans = read_trace(trace).spans
        names = {s["name"] for s in spans}
        assert "mine_parallel" in names
        workers = [
            s["worker"] for s in spans
            if s["name"] == "mine_rank" and s.get("worker") is not None
        ]
        assert workers, "expected worker-tagged mine_rank spans"

    def test_trace_output_matches_untraced(self, data_file, tmp_path, capsys):
        assert main(["mine", data_file, "--min-support", "2"]) == 0
        plain = capsys.readouterr().out
        trace = tmp_path / "mine.jsonl"
        assert main(
            ["mine", data_file, "--min-support", "2", "--trace", str(trace)]
        ) == 0
        assert capsys.readouterr().out == plain
