"""Unit tests for the comparison algorithms' characteristic structures."""

import pytest
from hypothesis import given

from repro.algorithms.afopt import AfoptNode, build_afopt_tree, subtree_size
from repro.algorithms.ctpro import CompressedTree, hash_cons_size
from repro.algorithms.fparray import FpArrayStructure, dataset_bytes
from repro.algorithms.lcm import database_bytes
from repro.algorithms.nonordfp import ARRAY_NODE_BYTES, NonordArrays
from repro.algorithms.patricia import PatriciaTrie
from repro.errors import ExperimentError
from repro.fptree.tree import FPTree
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy, random_database


def prepared(seed=3, min_support=2):
    db = random_database(seed, n_transactions=60, n_items=12, max_length=8)
    table, transactions = prepare_transactions(db, min_support)
    return len(table), transactions


class TestNonordArrays:
    def test_flattening_preserves_counts(self):
        n_ranks, transactions = prepared()
        tree = FPTree.from_rank_transactions(transactions, n_ranks)
        arrays = NonordArrays.from_tree(tree)
        assert arrays.node_count == tree.node_count
        for rank in range(1, n_ranks + 1):
            assert arrays.rank_support(rank) == tree.rank_count(rank)

    def test_paths_match_tree(self):
        n_ranks, transactions = prepared()
        tree = FPTree.from_rank_transactions(transactions, n_ranks)
        arrays = NonordArrays.from_tree(tree)
        for rank in range(1, n_ranks + 1):
            tree_paths = sorted(
                (tuple(p), c) for p, c in tree.prefix_paths(rank)
            )
            array_paths = sorted(
                (tuple(arrays.path_ranks(i)), arrays.counts[i])
                for i in range(arrays.starts[rank], arrays.starts[rank + 1])
            )
            assert array_paths == tree_paths

    def test_parents_precede_children(self):
        n_ranks, transactions = prepared()
        tree = FPTree.from_rank_transactions(transactions, n_ranks)
        arrays = NonordArrays.from_tree(tree)
        for index, parent in enumerate(arrays.parents):
            if parent >= 0:
                assert arrays.ranks[parent] < arrays.ranks[index]

    def test_memory_model(self):
        n_ranks, transactions = prepared()
        tree = FPTree.from_rank_transactions(transactions, n_ranks)
        arrays = NonordArrays.from_tree(tree)
        assert arrays.memory_bytes == arrays.node_count * ARRAY_NODE_BYTES


class TestFpArrayStructure:
    def test_unrolling_covers_all_nodes(self):
        n_ranks, transactions = prepared()
        tree = FPTree.from_rank_transactions(transactions, n_ranks)
        structure = FpArrayStructure.from_tree(tree)
        assert structure.node_count == tree.node_count

    def test_paths_match_tree(self):
        n_ranks, transactions = prepared()
        tree = FPTree.from_rank_transactions(transactions, n_ranks)
        structure = FpArrayStructure.from_tree(tree)
        for rank in range(1, n_ranks + 1):
            tree_paths = sorted((tuple(p), c) for p, c in tree.prefix_paths(rank))
            array_paths = sorted(
                (tuple(structure.path_ranks(i)), structure.counts[i])
                for i in structure.by_rank.get(rank, [])
            )
            assert array_paths == tree_paths

    def test_dataset_bytes(self):
        assert dataset_bytes([[1, 2, 3], [4]]) == 16


class TestAfoptTree:
    def test_build_counts(self):
        root = build_afopt_tree([[1, 2], [1, 2], [2]])
        # Ascending frequency order: rank 2 (less frequent) heads paths.
        assert set(root.children) == {2}
        assert root.children[2].count == 3
        assert root.children[2].children[1].count == 2

    def test_subtree_size(self):
        # Reversed paths 3-2-1 and 3-1 share the root child 3: 4 nodes.
        root = build_afopt_tree([[1, 2, 3], [1, 3]])
        assert subtree_size(root.children) == 4

    def test_copy_is_deep(self):
        node = AfoptNode(1)
        node.children[2] = AfoptNode(5)
        clone = node.copy()
        clone.children[2].count = 99
        assert node.children[2].count == 5


class TestCompressedTree:
    def test_identical_subtrees_shared(self):
        # Two distinct parents with structurally identical subtrees.
        tree = FPTree(4)
        tree.insert([1, 3, 4])
        tree.insert([2, 3, 4])
        shared, total = hash_cons_size(tree)
        assert total == 6
        assert shared < total  # the (3 -> 4) subtree is stored once

    def test_no_sharing_when_counts_differ(self):
        tree = FPTree(4)
        tree.insert([1, 3, 4])
        tree.insert([2, 3, 4])
        tree.insert([2, 3, 4])  # counts now differ between the subtrees
        shared, total = hash_cons_size(tree)
        assert shared == total

    def test_compression_ratio(self):
        n_ranks, transactions = prepared()
        compressed = CompressedTree(
            FPTree.from_rank_transactions(transactions, n_ranks)
        )
        assert 0 < compressed.compression_ratio <= 1.0
        assert compressed.memory_bytes > 0

    def test_empty_tree(self):
        compressed = CompressedTree(FPTree(0))
        assert compressed.compression_ratio == 1.0


class TestPatriciaTrie:
    def test_single_transaction_single_node(self):
        trie = PatriciaTrie.from_rank_transactions([[1, 2, 3, 4]], 4)
        assert trie.node_count == 1
        (child,) = trie.root.children.values()
        assert child.label == (1, 2, 3, 4)
        assert child.pcount == 1

    def test_shared_prefix_splits(self):
        trie = PatriciaTrie.from_rank_transactions([[1, 2, 3], [1, 2, 4]], 4)
        assert trie.node_count == 3  # (1,2) + (3) + (4)

    def test_prefix_termination(self):
        trie = PatriciaTrie.from_rank_transactions([[1, 2, 3], [1, 2]], 3)
        assert trie.node_count == 2
        (child,) = trie.root.children.values()
        assert child.label == (1, 2)
        assert child.pcount == 1

    def test_extension_descends(self):
        trie = PatriciaTrie.from_rank_transactions([[1, 2], [1, 2, 3]], 3)
        (child,) = trie.root.children.values()
        assert child.pcount == 1
        (grandchild,) = child.children.values()
        assert grandchild.label == (3,)

    def test_memory_counts_labels(self):
        trie = PatriciaTrie.from_rank_transactions([[1, 2, 3, 4]], 4)
        assert trie.memory_bytes == 16 + 4 * 4

    @given(db_strategy)
    def test_prefix_paths_match_fp_tree(self, database):
        table, transactions = prepare_transactions(database, 2)
        trie = PatriciaTrie.from_rank_transactions(transactions, len(table))
        fp = FPTree.from_rank_transactions(transactions, len(table))
        paths = trie.prefix_paths()
        for rank in range(1, len(table) + 1):
            fp_support = fp.rank_count(rank)
            trie_support = sum(c for __, c in paths.get(rank, []))
            assert trie_support == fp_support


class TestLcmDatabaseBytes:
    def test_scaling_with_transactions(self):
        small = database_bytes([((1, 2), 1)] * 10)
        large = database_bytes([((1, 2), 1)] * 20)
        assert large == 2 * small


class TestTopDownGuard:
    def test_refuses_pathological_length(self):
        from repro.algorithms.topdown import topdown_ranks

        with pytest.raises(ExperimentError):
            topdown_ranks([list(range(1, 40))], 1)
