"""The central correctness gate: every miner returns identical results.

Each registered algorithm is run against the brute-force oracle (and hence
transitively against each other) across example, random, structured, and
hypothesis-generated databases.
"""

import pytest
from hypothesis import given, settings

from repro.algorithms import get_miner, iter_miners
from repro.algorithms.bruteforce import brute_force
from tests.conftest import db_strategy, normalize, random_database

ALL_MINERS = [
    "apriori",
    "eclat",
    "topdown",
    "fp-growth",
    "fp-growth-tiny",
    "nonordfp",
    "lcm",
    "afopt",
    "fp-array",
    "ct-pro",
    "patricia",
    "cfp-growth",
    "cfp-growth-par",  # cfp-growth with a 2-worker parallel mine phase
]


def test_registry_contains_all():
    registered = iter_miners()
    for name in ALL_MINERS + ["brute-force"]:
        assert name in registered, f"{name} not registered"


def test_unknown_miner_raises():
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        get_miner("nope")


@pytest.mark.parametrize("name", ALL_MINERS)
class TestEveryMiner:
    def test_paper_example(self, name, small_db):
        expected = normalize(brute_force(small_db, 2))
        assert normalize(get_miner(name).mine(small_db, 2)) == expected

    def test_empty_database(self, name):
        assert get_miner(name).mine([], 1) == []

    def test_nothing_frequent(self, name):
        assert get_miner(name).mine([[1], [2], [3]], 2) == []

    def test_all_identical_transactions(self, name):
        db = [[1, 2, 3]] * 5
        results = normalize(get_miner(name).mine(db, 3))
        assert len(results) == 7  # all non-empty subsets of {1,2,3}
        assert all(s == 5 for s in results.values())

    def test_min_support_one(self, name):
        db = [[1, 2], [2, 3], [1, 3]]
        expected = normalize(brute_force(db, 1))
        assert normalize(get_miner(name).mine(db, 1)) == expected

    def test_random_databases(self, name):
        miner = get_miner(name)
        for seed in (0, 1, 2):
            db = random_database(seed, n_transactions=50, n_items=10, max_length=7)
            for min_support in (2, 5):
                expected = normalize(brute_force(db, min_support))
                actual = normalize(miner.mine(db, min_support))
                assert actual == expected, f"{name} seed={seed} xi={min_support}"

    def test_dense_shared_prefixes(self, name):
        db = (
            [[1, 2, 3, 4]] * 4
            + [[1, 2, 3]] * 3
            + [[1, 2]] * 2
            + [[2, 3, 4], [1, 4], [4]]
        )
        expected = normalize(brute_force(db, 2))
        assert normalize(get_miner(name).mine(db, 2)) == expected

    def test_string_items(self, name):
        db = [["a", "b"], ["b", "c"], ["a", "b", "c"], ["b"]]
        results = normalize(get_miner(name).mine(db, 2))
        assert results[frozenset(["b"])] == 4
        assert results[frozenset(["a", "b"])] == 2


# Hypothesis sweeps are limited to the faster miners; the slow ones
# (topdown, apriori at size) are covered by the parametrized cases above.
FAST_MINERS = ["fp-growth", "cfp-growth", "eclat", "lcm", "afopt", "nonordfp"]


@pytest.mark.parametrize("name", FAST_MINERS)
@settings(max_examples=20, deadline=None)
@given(database=db_strategy)
def test_property_equivalence(name, database):
    expected = normalize(brute_force(database, 2))
    assert normalize(get_miner(name).mine(database, 2)) == expected
