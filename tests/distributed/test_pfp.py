"""Correctness and shard-structure tests for parallel FP-growth."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bruteforce import brute_force
from repro.distributed import parallel_fp_growth
from repro.distributed.pfp import PfpMiner, assign_groups, group_dependent_shards
from repro.errors import ExperimentError
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy, normalize, random_database


class TestGroupAssignment:
    def test_round_robin(self):
        groups = assign_groups(6, 3)
        assert groups[1:] == [0, 1, 2, 0, 1, 2]

    def test_single_group(self):
        assert set(assign_groups(5, 1)[1:]) == {0}

    def test_more_groups_than_ranks(self):
        groups = assign_groups(2, 8)
        assert groups[1:] == [0, 1]


class TestShardGeneration:
    def test_each_group_gets_needed_prefixes(self):
        transactions = [[1, 2, 3], [2, 3], [1]]
        group_of = [0, 0, 1, 0]  # rank1 -> g0, rank2 -> g1, rank3 -> g0
        shards, stats = group_dependent_shards(transactions, group_of, 2)
        # Group 0 owns ranks 1 and 3: prefixes ending at the rightmost
        # group-0 item of each transaction.
        assert sorted(shards[0]) == sorted([[1, 2, 3], [2, 3], [1]])
        # Group 1 owns rank 2: prefixes ending at item 2.
        assert sorted(shards[1]) == sorted([[1, 2], [2]])
        assert stats.input_records == 3

    def test_duplication_bounded_by_groups(self):
        db = random_database(8, n_transactions=40, n_items=10, max_length=6)
        table, transactions = prepare_transactions(db, 2)
        for n_groups in (1, 2, 4):
            group_of = assign_groups(len(table), n_groups)
            shards, __ = group_dependent_shards(transactions, group_of, n_groups)
            total = sum(len(s) for s in shards.values())
            assert total <= n_groups * len(transactions)
            assert total >= len(transactions)


class TestPfpCorrectness:
    @pytest.mark.parametrize("n_groups", [1, 2, 3, 7])
    def test_matches_oracle(self, small_db, n_groups):
        result = parallel_fp_growth(small_db, 2, n_groups=n_groups)
        assert normalize(result.itemsets) == normalize(brute_force(small_db, 2))

    def test_random_databases(self):
        for seed in range(4):
            db = random_database(seed, n_transactions=50, n_items=10, max_length=7)
            expected = normalize(brute_force(db, 2))
            for n_groups in (1, 3, 5):
                result = parallel_fp_growth(db, 2, n_groups=n_groups)
                assert normalize(result.itemsets) == expected, (seed, n_groups)

    @settings(max_examples=20, deadline=None)
    @given(db_strategy, st.integers(min_value=1, max_value=5))
    def test_property_equivalence(self, database, n_groups):
        result = parallel_fp_growth(database, 2, n_groups=n_groups)
        assert normalize(result.itemsets) == normalize(brute_force(database, 2))

    def test_no_duplicate_itemsets_across_groups(self):
        db = random_database(3, n_transactions=60, n_items=12, max_length=8)
        result = parallel_fp_growth(db, 2, n_groups=4)
        keys = [frozenset(i) for i, __ in result.itemsets]
        assert len(keys) == len(set(keys))

    def test_validation(self):
        with pytest.raises(ExperimentError):
            parallel_fp_growth([[1]], 1, n_groups=0)

    def test_miner_interface(self, small_db):
        miner = PfpMiner(n_groups=3)
        assert normalize(miner.mine(small_db, 2)) == normalize(
            brute_force(small_db, 2)
        )


class TestShardReports:
    def test_shards_smaller_than_whole(self):
        db = random_database(9, n_transactions=120, n_items=15, max_length=9)
        single = parallel_fp_growth(db, 2, n_groups=1)
        split = parallel_fp_growth(db, 2, n_groups=4)
        whole_tree_bytes = single.max_shard_bytes
        # Memory balancing: the largest shard tree is smaller than the
        # single-machine tree.
        assert split.max_shard_bytes < whole_tree_bytes
        assert split.n_groups == 4
        assert sum(s.itemsets for s in split.shards) == len(split.itemsets)

    def test_stats_populated(self, small_db):
        result = parallel_fp_growth(small_db, 2, n_groups=2)
        assert result.count_stats.input_records == len(small_db)
        assert result.shard_stats.shuffle_bytes > 0
        assert result.total_shard_transactions >= len(small_db) - 1
