"""Unit tests for the MapReduce engine."""

import pytest

from repro.distributed import MapReduceJob
from repro.errors import ExperimentError


def word_count_job(n_partitions=3, combiner=None):
    def mapper(line):
        for word in line.split():
            yield word, 1

    def reducer(word, ones):
        yield word, sum(ones)

    return MapReduceJob(mapper, reducer, n_partitions=n_partitions, combiner=combiner)


class TestWordCount:
    def test_basic(self):
        outputs, stats = word_count_job().run(["a b a", "b c"])
        assert dict(outputs) == {"a": 2, "b": 2, "c": 1}
        assert stats.input_records == 2
        assert stats.map_output_records == 5
        assert stats.reduce_output_records == 3

    def test_deterministic(self):
        job = word_count_job()
        first, __ = job.run(["x y", "y z", "z z"])
        second, __ = job.run(["x y", "y z", "z z"])
        assert first == second

    def test_empty_input(self):
        outputs, stats = word_count_job().run([])
        assert outputs == []
        assert stats.shuffle_bytes == 0

    def test_combiner_shrinks_shuffle(self):
        def combiner(word, ones):
            yield word, sum(ones)

        records = ["a a a a a a a a"] * 10
        __, plain = word_count_job().run(records)
        __, combined = word_count_job(combiner=combiner).run(records)
        assert combined.shuffle_bytes < plain.shuffle_bytes
        # Same final answer.
        out_plain, __ = word_count_job().run(records)
        def reducer_sum(outputs):
            return dict(outputs)
        job = word_count_job(combiner=combiner)
        # With the combiner, values arriving at the reducer are partial
        # sums; summing them still yields the total.
        out_combined, __ = job.run(records)
        assert dict(out_combined) == dict(out_plain)


class TestPartitioning:
    def test_custom_partitioner(self):
        job = MapReduceJob(
            lambda r: [(r, r)],
            lambda k, vs: [(k, len(vs))],
            n_partitions=2,
            partitioner=lambda key, n: key % n,
        )
        __, stats = job.run([0, 1, 2, 3, 4, 5])
        assert stats.records_per_partition == {0: 3, 1: 3}
        assert stats.skew == pytest.approx(1.0)

    def test_skew_detection(self):
        job = MapReduceJob(
            lambda r: [(0, r)],  # everything to one key
            lambda k, vs: [(k, len(vs))],
            n_partitions=4,
            partitioner=lambda key, n: 0,
        )
        __, stats = job.run(list(range(8)))
        assert stats.max_partition_records == 8
        assert stats.skew == pytest.approx(4.0)

    def test_bad_partitioner_rejected(self):
        job = MapReduceJob(
            lambda r: [(r, 1)],
            lambda k, vs: [(k, len(vs))],
            n_partitions=2,
            partitioner=lambda key, n: 99,
        )
        with pytest.raises(ExperimentError):
            job.run([1])

    def test_partition_count_validation(self):
        with pytest.raises(ExperimentError):
            MapReduceJob(lambda r: [], lambda k, v: [], n_partitions=0)
