"""Tests for the top-level public API."""

import pytest

import repro
from repro import (
    MiningResult,
    build_cfp_array,
    build_cfp_tree,
    mine_frequent_itemsets,
)
from repro.algorithms.bruteforce import brute_force
from tests.conftest import normalize


class TestMineFrequentItemsets:
    def test_docstring_example(self):
        result = mine_frequent_itemsets([[1, 2], [1, 2, 3], [2, 3]], 2)
        assert result.support_of({1, 2}) == 2
        assert result.support_of({2}) == 3

    def test_matches_oracle(self, small_db):
        result = mine_frequent_itemsets(small_db, 2)
        assert normalize(result.itemsets) == normalize(brute_force(small_db, 2))

    def test_result_container(self):
        result = mine_frequent_itemsets([[1, 2], [1, 2]], 2)
        assert len(result) == 3
        assert result.min_support == 2
        assert result.support_of({9}) == 0
        assert {frozenset(i) for i, __ in result.of_size(1)} == {
            frozenset([1]),
            frozenset([2]),
        }
        assert list(iter(result))  # iterable

    def test_empty(self):
        result = mine_frequent_itemsets([], 1)
        assert len(result) == 0
        assert isinstance(result, MiningResult)


class TestBuildHelpers:
    def test_build_cfp_tree(self, small_db):
        table, tree = build_cfp_tree(small_db, 2)
        assert tree.node_count > 0
        assert tree.memory_bytes > 0
        assert len(table) == 4  # items 1-4 are frequent

    def test_build_cfp_tree_options(self, small_db):
        __, plain = build_cfp_tree(
            small_db, 2, enable_chains=False, enable_embedding=False
        )
        __, full = build_cfp_tree(small_db, 2)
        assert plain.node_count == full.node_count
        assert plain.memory_bytes >= full.memory_bytes

    def test_build_cfp_array(self, small_db):
        table, array = build_cfp_array(small_db, 2)
        assert array.node_count > 0
        # Item supports are recoverable from the subarrays.
        for item, support in table.supports.items():
            assert array.rank_support(table.rank_of[item]) == support


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_lazy_attributes(self):
        assert repro.mine_frequent_itemsets is mine_frequent_itemsets

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_reproerror_exported(self):
        from repro import ReproError
        from repro.errors import DatasetError

        assert issubclass(DatasetError, ReproError)
