"""Regression tests for the top-k collector's heap discipline.

Two defects the serving layer would have amplified:

* **duplicate heap entries** — ``emit`` pushed every call as its own
  entry, so an itemset reachable via several prefix paths (or re-emitted
  by an enumerator) occupied multiple heap slots, crowding distinct
  itemsets out of the top k;
* **order-dependent tie survivorship** — at the full-heap boundary, a
  candidate tying the minimum support was always rejected, so whichever
  equal-support itemset a miner happened to discover first survived.
  Tree- and array-order enumerations of the same database could then
  report different k-sets, which breaks the server's "identical to direct
  calls" contract.

The collector-level tests drive ``emit`` directly (the failing-first
datasets); the property tests hold the tree and array miners to the same
canonical answer: the k largest itemsets under ``(support desc, ranks
asc)`` over the full enumeration.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.fptree.growth import fp_growth
from repro.mining import mine_top_k, top_k_itemsets
from repro.mining.topk import _TopKCollector
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy


class TestDuplicateEmissions:
    def test_duplicate_itemset_occupies_one_slot(self):
        # k=2 and three candidates; the best one is emitted twice (the
        # multiple-prefix-path shape). With duplicate heap entries the
        # second slot holds the duplicate and the runner-up is lost.
        collector = _TopKCollector(k=2, min_length=1, floor=1)
        collector.emit((1,), 10)
        collector.emit((1,), 10)  # same itemset via another path
        collector.emit((2,), 7)
        collector.emit((3,), 5)
        assert collector.results() == [((1,), 10), ((2,), 7)]

    def test_unsorted_rank_aliases_are_one_itemset(self):
        collector = _TopKCollector(k=2, min_length=1, floor=1)
        collector.emit((2, 1), 9)
        collector.emit((1, 2), 9)  # the same itemset, unnormalized
        collector.emit((3,), 4)
        assert collector.results() == [((1, 2), 9), ((3,), 4)]

    def test_reemission_after_eviction_stays_out(self):
        collector = _TopKCollector(k=1, min_length=1, floor=1)
        collector.emit((5,), 3)
        collector.emit((1,), 8)  # evicts (5,)
        collector.emit((5,), 3)  # re-emission of the evicted itemset
        assert collector.results() == [((1,), 8)]


class TestTieDeterminism:
    CANDIDATES = [((3,), 6), ((1, 2), 6), ((4,), 6), ((2,), 9)]

    def test_boundary_ties_are_emission_order_independent(self):
        # k=2: {2} always wins; among the support-6 ties the canonical
        # order keeps (1, 2). The old first-come boundary kept whichever
        # tie was emitted before the heap filled.
        expected = [((2,), 9), ((1, 2), 6)]
        for order in itertools.permutations(self.CANDIDATES):
            collector = _TopKCollector(k=2, min_length=1, floor=1)
            for ranks, support in order:
                collector.emit(ranks, support)
            assert collector.results() == expected, f"order {order}"

    def test_results_ordering_pins_prefix_ties(self):
        # (1,) vs (1, 2): results() must order the shorter tuple first on
        # equal support, and the boundary comparison must agree with it.
        collector = _TopKCollector(k=2, min_length=1, floor=1)
        collector.emit((1, 2), 5)
        collector.emit((1,), 5)
        assert collector.results() == [((1,), 5), ((1, 2), 5)]


def canonical_top_k(database, k, min_length=1):
    """The spec: full enumeration, then the k best under (support, ranks)."""
    table, transactions = prepare_transactions(database, 1)
    all_itemsets = fp_growth(database, 1)
    ranked = []
    for itemset, support in all_itemsets:
        ranks = tuple(sorted(table.rank_of[item] for item in itemset))
        if len(ranks) >= min_length:
            ranked.append((ranks, support))
    ranked.sort(key=lambda e: (-e[1], e[0]))
    return ranked[:k]


class TestTreeArrayParity:
    @settings(max_examples=40, deadline=None)
    @given(db_strategy, st.integers(min_value=1, max_value=12))
    def test_tree_and_array_miners_agree_with_spec(self, database, k):
        table, transactions = prepare_transactions(database, 1)
        if not table:
            return
        array = convert(
            TernaryCfpTree.from_rank_transactions(transactions, len(table))
        )
        expected = canonical_top_k(database, k)
        assert mine_top_k(array, k) == expected
        tree_results = [
            (tuple(sorted(table.rank_of[i] for i in itemset)), support)
            for itemset, support in top_k_itemsets(database, k)
        ]
        tree_results.sort(key=lambda e: (-e[1], e[0]))
        assert tree_results == expected

    @settings(max_examples=20, deadline=None)
    @given(db_strategy, st.integers(min_value=1, max_value=8))
    def test_array_miner_honors_min_length(self, database, k):
        table, transactions = prepare_transactions(database, 1)
        if not table:
            return
        array = convert(
            TernaryCfpTree.from_rank_transactions(transactions, len(table))
        )
        results = mine_top_k(array, k, min_length=2)
        assert results == canonical_top_k(database, k, min_length=2)
        assert all(len(ranks) >= 2 for ranks, __ in results)
