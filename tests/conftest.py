"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st


def paper_example_database() -> list[list[int]]:
    """A small database shaped like the paper's Figure 1 setting.

    Items 1-4 are frequent; item 9 is rare and must be filtered out at
    min_support >= 2.
    """
    return [
        [1, 2, 3],
        [1, 2, 4],
        [1, 3],
        [2, 3],
        [1, 2, 3, 4],
        [3, 4],
        [1],
        [2, 4],
        [1, 2, 3],
        [1, 3, 4, 9],
    ]


@pytest.fixture
def small_db() -> list[list[int]]:
    return paper_example_database()


def random_database(
    seed: int,
    n_transactions: int = 60,
    n_items: int = 12,
    max_length: int = 8,
) -> list[list[int]]:
    """Deterministic random database with skewed item frequencies."""
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) for i in range(n_items)]
    database = []
    for __ in range(n_transactions):
        length = rng.randint(1, max_length)
        transaction = set(rng.choices(range(n_items), weights=weights, k=length))
        database.append(sorted(transaction))
    return database


#: Hypothesis strategy for small transaction databases over items 0..9.
db_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=6),
    min_size=1,
    max_size=25,
)


def normalize(results) -> dict[frozenset, int]:
    """Canonical form of miner output for equivalence checks."""
    normalized = {}
    for itemset, support in results:
        key = frozenset(itemset)
        assert key, "miners must not emit the empty itemset"
        assert key not in normalized, f"duplicate itemset {sorted(key)}"
        normalized[key] = support
    return normalized
