"""ServingStore: persistence round trip and direct-call equivalence."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.mining.topk import mine_top_k
from repro.rules import mine_rules
from repro.serving.store import (
    ServingStore,
    StoreError,
    build_store,
    sidecar_path,
)
from repro.util.items import prepare_transactions
from repro.util.queries import itemset_support
from tests.conftest import db_strategy, paper_example_database, random_database

MIN_SUPPORT = 2


@pytest.fixture
def store_path(tmp_path):
    path = tmp_path / "paper.cfpa"
    build_store(paper_example_database(), MIN_SUPPORT, path)
    return path


class TestBuildAndOpen:
    def test_round_trip_table(self, store_path):
        table, _ = prepare_transactions(paper_example_database(), MIN_SUPPORT)
        with ServingStore(store_path) as store:
            assert store.table.fingerprint() == table.fingerprint()
            assert store.n_transactions == len(paper_example_database())
            assert store.table.min_support == MIN_SUPPORT

    def test_missing_sidecar(self, store_path, tmp_path):
        import os

        os.unlink(sidecar_path(store_path))
        with pytest.raises(StoreError, match="sidecar not found"):
            ServingStore(store_path)

    def test_corrupt_sidecar(self, store_path):
        with open(sidecar_path(store_path), "w", encoding="utf-8") as handle:
            handle.write("{nope")
        with pytest.raises(StoreError, match="not valid JSON"):
            ServingStore(store_path)

    def test_fingerprint_mismatch(self, store_path):
        side = sidecar_path(store_path)
        with open(side, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        meta["items"][0][1] += 1  # tamper with one support
        with open(side, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        with pytest.raises(StoreError, match="fingerprint"):
            ServingStore(store_path)

    def test_missing_key(self, store_path):
        side = sidecar_path(store_path)
        with open(side, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        del meta["n_transactions"]
        with open(side, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        with pytest.raises(StoreError, match="n_transactions"):
            ServingStore(store_path)


class TestResidentBytes:
    """resident_bytes must cover everything long-lived, sidecar included."""

    def test_includes_sidecar_bytes(self, store_path):
        import os

        sidecar_bytes = os.path.getsize(sidecar_path(store_path))
        assert sidecar_bytes > 0
        with ServingStore(store_path) as store:
            # Regression: resident_bytes used to report only the array
            # reader, undercounting the admission-control input by the
            # whole parsed vocabulary.
            assert (
                store.resident_bytes
                == store.array.memory_bytes + sidecar_bytes
            )
            assert store.resident_bytes > store.array.memory_bytes

    def test_tracks_vocabulary_size(self, tmp_path):
        small = tmp_path / "small.cfpa"
        large = tmp_path / "large.cfpa"
        build_store(random_database(seed=1, n_transactions=40), 2, small)
        build_store(
            [[f"item-{i}", f"item-{i + 1}"] for i in range(200)] * 2,
            2,
            large,
        )
        import os

        with ServingStore(small) as a, ServingStore(large) as b:
            delta = b.resident_bytes - a.resident_bytes
            sidecar_delta = os.path.getsize(sidecar_path(large)) - os.path.getsize(
                sidecar_path(small)
            )
            array_delta = b.array.memory_bytes - a.array.memory_bytes
            assert delta == array_delta + sidecar_delta
            assert sidecar_delta > 0


class TestPartitionedStore:
    """ServingStore opens partitioned (v3) stores transparently."""

    def test_opens_v3_and_answers_match_v2(self, tmp_path):
        from repro.storage import PartitionedCfpArray

        database = random_database(seed=5, n_transactions=120)
        v2 = tmp_path / "mono.cfpa"
        v3 = tmp_path / "part.cfpa"
        build_store(database, 2, v2)
        build_store(database, 2, v3, partition_bytes=4096)
        queries = ([1], [2, 3], [0, 1, 2], [5], [1, 4])
        with ServingStore(v2) as mono, ServingStore(v3, hot_bytes=2048) as part:
            assert isinstance(part.array, PartitionedCfpArray)
            assert len(part.array.partitions) >= 1
            for items in queries:
                assert part.support(items) == mono.support(items), items
            assert part.top_k(10) == mono.top_k(10)
            assert part.rules(min_confidence=0.6) == mono.rules(
                min_confidence=0.6
            )

    def test_hot_set_counts_as_resident(self, tmp_path):
        database = random_database(seed=5, n_transactions=120)
        path = tmp_path / "part.cfpa"
        build_store(database, 2, path, partition_bytes=4096)
        with ServingStore(path, hot_bytes=0) as cold, ServingStore(
            path, hot_bytes=1 << 16
        ) as hot:
            assert hot.array.hot_bytes > 0
            assert (
                hot.resident_bytes - cold.resident_bytes
                == hot.array.hot_bytes
            )


class TestQueryParity:
    """Store answers == the answers of direct calls on in-memory structures."""

    def _direct(self, database, min_support):
        table, transactions = prepare_transactions(database, min_support)
        tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
        return table, convert(tree)

    def test_support_matches_direct(self, store_path):
        database = paper_example_database()
        table, array = self._direct(database, MIN_SUPPORT)
        with ServingStore(store_path) as store:
            for items in ([1], [3, 4], [1, 2, 3], [2, 9], [7], [1, 2, 3, 4]):
                assert store.support(items) == itemset_support(
                    array, table, items
                ), items

    def test_top_k_matches_direct(self, store_path):
        database = paper_example_database()
        table, array = self._direct(database, MIN_SUPPORT)
        with ServingStore(store_path) as store:
            for k in (1, 3, 10, 50):
                expected = [
                    (table.ranks_to_items(ranks), support)
                    for ranks, support in mine_top_k(array, k)
                ]
                assert store.top_k(k) == expected, k

    def test_rules_match_mine_rules(self, store_path):
        database = paper_example_database()
        expected = mine_rules(database, MIN_SUPPORT, min_confidence=0.6)
        with ServingStore(store_path) as store:
            assert store.rules(min_confidence=0.6) == expected
            # The cache serves the identical object on a repeat query.
            assert store.rules(min_confidence=0.6) is store.rules(
                min_confidence=0.6
            )

    def test_also_bought_subsets_rules(self, store_path):
        with ServingStore(store_path) as store:
            recommended = store.also_bought([1], limit=3, min_confidence=0.5)
            assert len(recommended) <= 3
            for rule in recommended:
                assert set(rule.antecedent) <= {1}
                assert 1 not in rule.consequent

    @settings(max_examples=20, deadline=None)
    @given(database=db_strategy, seed=st.integers(0, 5))
    def test_support_property(self, database, seed, tmp_path_factory):
        import random as random_module

        path = tmp_path_factory.mktemp("stores") / "db.cfpa"
        try:
            build_store(database, 2, path)
        except Exception:
            # Databases with no frequent items cannot be built into a
            # store; that is the build pipeline's concern, not serving's.
            return
        table, array = self._direct(database, 2)
        rng = random_module.Random(seed)
        universe = list(range(0, 10))
        with ServingStore(path) as store:
            for _ in range(8):
                items = rng.sample(universe, rng.randint(1, 3))
                assert store.support(items) == itemset_support(
                    array, table, items
                )


class TestConcurrentStoreAccess:
    def test_threaded_queries_agree(self, tmp_path):
        import threading

        database = random_database(seed=3, n_transactions=80)
        path = tmp_path / "rand.cfpa"
        build_store(database, 3, path)
        with ServingStore(path, pool_pages=2, cache_budget=1 << 12) as store:
            queries = [[1], [2, 3], [0, 1, 2], [5], [1, 4]]
            expected = [store.support(items) for items in queries]
            failures: list[str] = []

            def worker() -> None:
                for _ in range(20):
                    for items, want in zip(queries, expected):
                        got = store.support(items)
                        if got != want:  # pragma: no cover - failure path
                            failures.append(f"{items}: {got} != {want}")

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures
