"""End-to-end server suite: protocol parity with direct calls, admission
control, graceful drain, fault-injection transparency, observability.

No pytest-asyncio in the image: every test drives its own event loop
through ``asyncio.run`` on a small async body.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro import faultinject, obs
from repro.budget import DEFAULT_REQUEST_BYTES
from repro.obs.registry import MetricsRegistry
from repro.serving.loadgen import run_load
from repro.serving.server import MAX_LINE_BYTES, ReproServer
from repro.serving.store import ServingStore, build_store
from tests.conftest import paper_example_database, random_database

MIN_SUPPORT = 2


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.setenv("REPRO_IO_BACKOFF", "0")  # retries must not sleep
    faultinject.reset()
    yield
    faultinject.reset()
    obs.metrics.reset()


@pytest.fixture
def store(tmp_path):
    path = tmp_path / "paper.cfpa"
    build_store(paper_example_database(), MIN_SUPPORT, path)
    with ServingStore(path) as opened:
        yield opened


async def _rpc(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter, request: dict
) -> dict:
    writer.write(json.dumps(request).encode("ascii") + b"\n")
    await writer.drain()
    line = await reader.readline()
    assert line, "server closed the connection mid-request"
    return json.loads(line)


async def _started(store: ServingStore, **kwargs) -> ReproServer:
    server = ReproServer(store, **kwargs)
    await server.start()
    return server


class TestProtocolParity:
    """Server answers are byte-identical to the direct library calls."""

    def test_all_ops_match_direct_calls(self, store):
        support_queries = ([1], [3, 4], [1, 2, 3], [2, 9], [1, 2, 3, 4], [7])
        expected_support = [store.support(items) for items in support_queries]
        expected_topk = {
            k: [[list(itemset), s] for itemset, s in store.top_k(k)]
            for k in (1, 3, 25)
        }
        expected_rules = [
            {
                "antecedent": list(rule.antecedent),
                "consequent": list(rule.consequent),
                "support": rule.support,
                "confidence": rule.confidence,
                "lift": rule.lift,
            }
            for rule in store.also_bought([1, 2], limit=4)
        ]

        async def body() -> None:
            server = await _started(store, registry=MetricsRegistry())
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                try:
                    for items, want in zip(support_queries, expected_support):
                        response = await _rpc(
                            reader, writer, {"op": "support", "items": items}
                        )
                        assert response["ok"] and response["result"] == want
                    for k, want in expected_topk.items():
                        response = await _rpc(reader, writer, {"op": "topk", "k": k})
                        assert response["ok"] and response["result"] == want
                    response = await _rpc(
                        reader,
                        writer,
                        {"op": "rules", "basket": [1, 2], "limit": 4},
                    )
                    assert response["ok"] and response["result"] == expected_rules
                finally:
                    writer.close()
            finally:
                await server.stop()

        asyncio.run(body())

    def test_errors_leave_connection_usable(self, store):
        async def body() -> None:
            registry = MetricsRegistry()
            server = await _started(store, registry=registry)
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                try:
                    bad = [
                        b"{not json\n",
                        b"[1, 2]\n",
                        b'{"op": "nope"}\n',
                        b'{"op": "support"}\n',
                        b'{"op": "support", "items": []}\n',
                        b'{"op": "support", "items": [[1]]}\n',
                        b'{"op": "topk"}\n',
                        b'{"op": "topk", "k": 0}\n',
                        b'{"op": "topk", "k": true}\n',
                        b'{"op": "rules", "basket": [1], "limit": 0}\n',
                        b'{"op": "rules", "basket": [1], "min_confidence": "x"}\n',
                    ]
                    for payload in bad:
                        writer.write(payload)
                        await writer.drain()
                        response = json.loads(await reader.readline())
                        assert response["ok"] is False, payload
                        assert response["error"]["code"] == "bad_request", payload
                    # The connection survived eleven bad requests.
                    response = await _rpc(
                        reader, writer, {"id": 9, "op": "support", "items": [1]}
                    )
                    assert response == {
                        "id": 9,
                        "ok": True,
                        "result": store.support([1]),
                    }
                    assert registry.get("serving.errors") == len(bad)
                finally:
                    writer.close()
            finally:
                await server.stop()

        asyncio.run(body())

    def test_oversized_line_poisons_only_its_connection(self, store):
        async def body() -> None:
            registry = MetricsRegistry()
            server = await _started(store, registry=registry)
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b'{"op": "support", "items": [' + b"1," * MAX_LINE_BYTES)
                await writer.drain()
                # The server answers bad_request and hangs up — but with
                # unread bytes still in flight the close may surface to
                # this client as a reset instead of a readable response.
                try:
                    line = await reader.readline()
                    if line:
                        response = json.loads(line)
                        assert response["ok"] is False
                        assert response["error"]["code"] == "bad_request"
                except (ConnectionResetError, OSError):
                    pass
                writer.close()
                # The server itself survived and keeps serving.
                reader2, writer2 = await asyncio.open_connection(
                    server.host, server.port
                )
                response = await _rpc(
                    reader2, writer2, {"op": "support", "items": [1]}
                )
                assert response["ok"] and response["result"] == store.support([1])
                writer2.close()
                assert registry.get("serving.errors") == 1
            finally:
                await server.stop()

        asyncio.run(body())

    def test_request_id_echo_and_ping(self, store):
        async def body() -> None:
            server = await _started(store, registry=MetricsRegistry())
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                response = await _rpc(reader, writer, {"id": "abc", "op": "ping"})
                assert response == {"id": "abc", "ok": True, "result": "pong"}
                response = await _rpc(reader, writer, {"op": "stats"})
                assert response["ok"] is True
                assert response["result"]["max_inflight"] == server.max_inflight
                writer.close()
            finally:
                await server.stop()

        asyncio.run(body())


class TestAdmissionControl:
    def test_overload_rejected_then_recovers(self, store):
        gate = threading.Event()
        direct = store.support
        store.support = lambda items: (gate.wait(5), direct(items))[1]
        # Budget for exactly one request slot -> max_inflight == 1.
        budget = store.resident_bytes + DEFAULT_REQUEST_BYTES

        async def body() -> None:
            registry = MetricsRegistry()
            server = await _started(store, memory_budget=budget, registry=registry)
            assert server.max_inflight == 1
            try:
                r1, w1 = await asyncio.open_connection(server.host, server.port)
                r2, w2 = await asyncio.open_connection(server.host, server.port)
                try:
                    first = asyncio.ensure_future(
                        _rpc(r1, w1, {"id": 1, "op": "support", "items": [1]})
                    )
                    for _ in range(100):  # wait until the slot is taken
                        await asyncio.sleep(0.01)
                        if server._inflight >= 1:
                            break
                    rejected = await _rpc(
                        r2, w2, {"id": 2, "op": "support", "items": [2]}
                    )
                    assert rejected["ok"] is False
                    assert rejected["error"]["code"] == "overloaded"
                    assert registry.get("serving.rejected") == 1
                    gate.set()
                    accepted = await first
                    assert accepted["ok"] and accepted["result"] == direct([1])
                    # The slot freed: the same connection is admitted now.
                    retry = await _rpc(
                        r2, w2, {"id": 3, "op": "support", "items": [2]}
                    )
                    assert retry["ok"] and retry["result"] == direct([2])
                finally:
                    w1.close()
                    w2.close()
            finally:
                gate.set()
                await server.stop()

        asyncio.run(body())


class TestGracefulDrain:
    def test_inflight_request_finishes_during_stop(self, store):
        gate = threading.Event()
        direct = store.support
        store.support = lambda items: (gate.wait(5), direct(items))[1]

        async def body() -> None:
            server = await _started(store, registry=MetricsRegistry())
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                idle_reader, idle_writer = await asyncio.open_connection(
                    server.host, server.port
                )
                pending = asyncio.ensure_future(
                    _rpc(reader, writer, {"id": 1, "op": "support", "items": [3, 4]})
                )
                for _ in range(100):
                    await asyncio.sleep(0.01)
                    if server._inflight >= 1:
                        break
                stopping = asyncio.ensure_future(server.stop())
                await asyncio.sleep(0.05)
                assert not stopping.done()  # drain waits on the in-flight op
                gate.set()
                response = await pending
                assert response["ok"] and response["result"] == direct([3, 4])
                await stopping
                # The idle connection was closed by the drain ...
                assert await idle_reader.read() == b""
                # ... and new connections are refused.
                with pytest.raises(OSError):
                    await asyncio.open_connection(server.host, server.port)
                writer.close()
                idle_writer.close()
            finally:
                gate.set()
                await server.stop()

        asyncio.run(body())


class TestFaultTransparency:
    def test_transient_read_faults_invisible_to_clients(self, tmp_path):
        database = random_database(seed=11, n_transactions=100)
        path = tmp_path / "faulty.cfpa"
        build_store(database, 3, path)
        queries = ([1], [0, 1], [2, 3], [1, 2, 4], [5])
        with ServingStore(path) as oracle:
            expected = [oracle.support(items) for items in queries]
        # A fresh store serves with a *cold* pool, so the first query
        # really reads pages — and hits the faults planted below. The
        # plan is installed after open: the header read has no retry
        # loop, the pool's read path (the serving path) does.
        with ServingStore(path, pool_pages=2, cache_budget=0, verify=False) as store:
            faultinject.install("pagefile.read:flake:times=3")

            async def body() -> None:
                registry = MetricsRegistry()
                server = await _started(store, registry=registry)
                try:
                    reader, writer = await asyncio.open_connection(
                        server.host, server.port
                    )
                    try:
                        for items, want in zip(queries, expected):
                            response = await _rpc(
                                reader, writer, {"op": "support", "items": items}
                            )
                            assert response["ok"] is True, (items, response)
                            assert response["result"] == want
                    finally:
                        writer.close()
                    assert registry.get("serving.errors") == 0
                finally:
                    await server.stop()

            asyncio.run(body())
            # The faults really fired; the retry loop absorbed them.
            assert obs.metrics.get("faultinject.fired") == 3


class TestObservability:
    def test_counters_histograms_and_spans(self, store):
        from repro.obs.tracer import Tracer

        registry = MetricsRegistry()
        tracer = Tracer()
        previous = obs.set_tracer(tracer)
        try:

            async def body() -> None:
                server = await _started(store, registry=registry)
                try:
                    reader, writer = await asyncio.open_connection(
                        server.host, server.port
                    )
                    for items in ([1], [2], [3, 4]):
                        await _rpc(reader, writer, {"op": "support", "items": items})
                    await _rpc(reader, writer, {"op": "topk", "k": 2})
                    await _rpc(reader, writer, {"op": "bogus"})
                    writer.close()
                finally:
                    await server.stop()

            asyncio.run(body())
        finally:
            obs.set_tracer(previous)
        assert registry.get("serving.requests") == 5
        assert registry.get("serving.connections") == 1
        assert registry.get("serving.errors") == 1
        support_latency = registry.histogram("serving.latency_ms.support")
        assert support_latency is not None and support_latency.count == 3
        assert registry.histogram("serving.latency_ms.topk").count == 1
        assert registry.histogram("serving.latency_ms.invalid").count == 1
        # The drain published the pool counters into the same registry.
        assert registry.get("bufferpool.hits") + registry.get("bufferpool.faults") > 0
        spans = [r for r in tracer.records if r.name == "serve_request"]
        assert len(spans) == 5
        assert {s.attrs["op"] for s in spans} == {"support", "topk", "invalid"}
        assert all(s.parent_id is None for s in spans)


class TestLoadHarness:
    def test_64_concurrent_clients_verified(self, tmp_path):
        database = random_database(seed=23, n_transactions=120, n_items=16)
        path = tmp_path / "load.cfpa"
        build_store(database, 3, path)
        with ServingStore(path) as store:
            report = run_load(store, clients=64, requests_per_client=3, seed=7)
        assert report.clients == 64
        assert report.requests == 192
        assert report.errors == 0
        assert report.mismatches == 0
        assert report.p50_ms <= report.p99_ms <= report.max_ms
        assert report.rps > 0
        payload = report.to_dict()
        assert payload["clients"] == 64 and payload["mismatches"] == 0
