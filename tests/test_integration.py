"""Cross-module integration tests: full pipelines on every dataset proxy."""

import pytest

from repro.core.cfp_growth import mine_rank_transactions
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.datasets import FIMI_PROXIES, make_dataset
from repro.fptree.growth import CountCollector, mine_ranks
from repro.fptree.tree import FPTree
from repro.util.items import prepare_transactions

#: Small instances of every proxy with a support keeping output modest.
DATASET_CASES = [
    ("retail", {"n_transactions": 400}, 0.03),
    ("connect", {"n_transactions": 200}, 0.40),
    ("kosarak", {"n_transactions": 600}, 0.02),
    ("accidents", {"n_transactions": 200}, 0.45),
    ("webdocs", {"n_transactions": 120}, 0.25),
    ("quest1", {"scale": 0.02}, 0.08),
    ("quest2", {"scale": 0.01}, 0.08),
]


@pytest.mark.parametrize("name,args,relative", DATASET_CASES)
class TestEveryProxyEndToEnd:
    def _prepare(self, name, args, relative):
        database = make_dataset(name, **args)
        min_support = max(2, int(relative * len(database)))
        table, transactions = prepare_transactions(database, min_support)
        return table, transactions, min_support

    def test_cfp_growth_matches_fp_growth(self, name, args, relative):
        table, transactions, min_support = self._prepare(name, args, relative)
        cfp = mine_rank_transactions(
            list(transactions), len(table), min_support, CountCollector()
        )
        fp = mine_ranks(transactions, len(table), min_support, CountCollector())
        assert cfp.count == fp.count, name

    def test_structures_agree_on_shape(self, name, args, relative):
        table, transactions, min_support = self._prepare(name, args, relative)
        fp_tree = FPTree.from_rank_transactions(transactions, len(table))
        cfp_tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
        assert cfp_tree.node_count == fp_tree.node_count, name
        array = convert(cfp_tree)
        assert array.node_count == fp_tree.node_count, name
        # Per-item supports agree across all three structures.
        for rank in range(1, len(table) + 1):
            assert array.rank_support(rank) == fp_tree.rank_count(rank), name

    def test_compression_always_wins(self, name, args, relative):
        table, transactions, __ = self._prepare(name, args, relative)
        cfp_tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
        if cfp_tree.node_count < 50:
            pytest.skip("tree too small for a meaningful ratio")
        baseline = cfp_tree.node_count * 40
        assert cfp_tree.memory_bytes * 3 < baseline, name
        array = convert(cfp_tree)
        assert array.memory_bytes * 3 < baseline, name
