"""Tests for the wall-clock benchmark harness (`repro bench`).

Real benchmark runs are timing-dependent, so these tests inject tiny
datasets through ``run_bench(datasets=...)`` and exercise the report
plumbing (schema, persistence, comparison gate, CLI exit codes) rather
than asserting on wall times.
"""

from __future__ import annotations

import json

from repro import bench
from tests.conftest import paper_example_database, random_database


def _tiny_run(jobs=(1, 2)):
    return bench.run_bench(
        jobs=jobs,
        datasets={
            "paper": (paper_example_database(), 2),
            "random": (random_database(1), 3),
        },
    )


class TestRunBench:
    def test_report_shape(self):
        report = _tiny_run()
        assert report["schema"] == bench.SCHEMA_VERSION
        assert set(report["datasets"]) == {"paper", "random"}
        entry = report["datasets"]["paper"]
        assert entry["transactions"] == 10
        assert entry["nodes"] > 0
        assert set(entry["mine"]) == {"1", "2"}
        for mine in entry["mine"].values():
            assert mine["wall_s"] >= 0
            assert mine["itemsets"] > 0
        assert report["peak_rss_kb"] > 0

    def test_serial_always_measured_for_speedup(self):
        # Asking only for jobs=2 still measures jobs=1 first: speedups are
        # relative to the same run's serial mine.
        report = bench.run_bench(
            jobs=(2,), datasets={"paper": (paper_example_database(), 2)}
        )
        assert set(report["datasets"]["paper"]["mine"]) == {"1", "2"}

    def test_itemset_counts_agree_across_worker_counts(self):
        # The built-in correctness tripwire: worker count must not change
        # the number of frequent itemsets.
        report = _tiny_run(jobs=(1, 2, 4))
        for entry in report["datasets"].values():
            counts = {m["itemsets"] for m in entry["mine"].values()}
            assert len(counts) == 1


class TestPersistence:
    def test_write_and_find_previous(self, tmp_path):
        report = _tiny_run()
        path = bench.write_report(report, tmp_path)
        assert path.name.startswith("BENCH_") and path.suffix == ".json"
        assert json.loads(path.read_text())["schema"] == bench.SCHEMA_VERSION
        assert bench.find_previous(tmp_path) == path
        assert bench.find_previous(tmp_path, exclude=path) is None

    def test_baseline_never_found_implicitly(self, tmp_path):
        (tmp_path / "BENCH_baseline.json").write_text("{}")
        assert bench.find_previous(tmp_path) is None


class TestCompareReports:
    def _reports(self, before_s, after_s):
        def make(seconds):
            return {
                "datasets": {
                    "d": {
                        "build_s": 0.0,
                        "convert_s": 0.0,
                        "mine": {"1": {"wall_s": seconds}},
                    }
                }
            }

        return make(after_s), make(before_s)

    def test_regression_beyond_tolerance_flagged(self):
        current, previous = self._reports(before_s=1.0, after_s=1.5)
        regressions = bench.compare_reports(current, previous, tolerance=0.3)
        assert len(regressions) == 1
        assert "d/mine@1" in regressions[0]

    def test_within_tolerance_passes(self):
        current, previous = self._reports(before_s=1.0, after_s=1.2)
        assert bench.compare_reports(current, previous, tolerance=0.3) == []

    def test_speedup_never_fails(self):
        current, previous = self._reports(before_s=1.0, after_s=0.2)
        assert bench.compare_reports(current, previous, tolerance=0.0) == []

    def test_noise_floor_suppresses_micro_jitter(self):
        # 10ms -> 40ms is a 300% "regression" but only 30ms of wall time.
        current, previous = self._reports(before_s=0.01, after_s=0.04)
        assert bench.compare_reports(current, previous, tolerance=0.3) == []

    def test_unknown_datasets_ignored(self):
        current, __ = self._reports(before_s=1.0, after_s=9.0)
        assert bench.compare_reports(current, {"datasets": {}}, 0.3) == []

    def test_serving_p99_regression_flagged(self):
        current = {"datasets": {}, "serving": {"p50_ms": 1.0, "p99_ms": 900.0}}
        previous = {"datasets": {}, "serving": {"p50_ms": 1.0, "p99_ms": 100.0}}
        regressions = bench.compare_reports(current, previous, tolerance=0.3)
        assert len(regressions) == 1 and "serving/p99" in regressions[0]

    def test_serving_leg_skipped_when_absent(self):
        # A v2 baseline has no serving entry; the gate must not trip.
        current = {"datasets": {}, "serving": {"p50_ms": 1.0, "p99_ms": 900.0}}
        assert bench.compare_reports(current, {"datasets": {}}, 0.3) == []

    def test_serving_jitter_under_noise_floor_ignored(self):
        # +300% but only 30ms of absolute p99 movement: loopback noise.
        current = {"datasets": {}, "serving": {"p99_ms": 40.0}}
        previous = {"datasets": {}, "serving": {"p99_ms": 10.0}}
        assert bench.compare_reports(current, previous, 0.3) == []


class TestMain:
    def test_quick_run_writes_report_and_passes(self, tmp_path, capsys):
        # A real (tiny, via --datasets) end-to-end run through the CLI glue.
        code = bench.main(
            ["--quick", "--datasets", "retail", "--jobs", "1,2",
             "--output-dir", str(tmp_path), "--no-compare", "--no-serving"]
        )
        assert code == 0
        assert list(tmp_path.glob("BENCH_*.json"))
        assert "retail" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys, monkeypatch):
        # Forge a much-faster baseline so the real run must look regressed
        # (with the noise floor lowered so tiny wall times still count).
        monkeypatch.setattr(bench, "NOISE_FLOOR_SECONDS", 0.0)
        baseline = {
            "datasets": {
                "kosarak": {
                    "build_s": 1e-9,
                    "convert_s": 1e-9,
                    "mine": {"1": {"wall_s": 1e-9}},
                }
            }
        }
        baseline_path = tmp_path / "BENCH_baseline.json"
        baseline_path.write_text(json.dumps(baseline))
        code = bench.main(
            ["--quick", "--datasets", "kosarak",
             "--jobs", "1", "--output-dir", str(tmp_path), "--no-serving",
             "--baseline", str(baseline_path), "--tolerance", "0.0"]
        )
        assert code == 1
        assert "perf regressions" in capsys.readouterr().err

    def test_missing_baseline_is_usage_error(self, tmp_path):
        code = bench.main(
            ["--output-dir", str(tmp_path), "--baseline", str(tmp_path / "no.json")]
        )
        assert code == 2

    def test_bad_jobs_is_usage_error(self, tmp_path):
        assert bench.main(["--jobs", "two", "--output-dir", str(tmp_path)]) == 2

    def test_unknown_dataset_rejected(self, tmp_path):
        import pytest

        with pytest.raises(SystemExit):
            bench.run_bench(dataset_names=["nope"])

    def test_format_summary_mentions_every_dataset(self):
        report = _tiny_run()
        summary = bench.format_summary(report)
        assert "paper" in summary and "random" in summary
        assert "peak RSS" in summary


class TestServingLeg:
    def test_report_entry_shape_and_parity(self):
        report = bench.run_bench(
            jobs=(1,),
            build_jobs=(1,),
            datasets={"random": (random_database(5, n_transactions=80), 3)},
            serving=True,
        )
        serving = report["serving"]
        assert serving["dataset"] == "random"
        assert serving["clients"] == bench.SERVING_CLIENTS
        assert serving["requests"] == serving["clients"] * 16
        # The load run doubles as a correctness run.
        assert serving["errors"] == 0
        assert serving["mismatches"] == 0
        assert serving["p50_ms"] <= serving["p99_ms"] <= serving["max_ms"]
        assert serving["support_queries"] > 0
        assert serving["support_columnar_s"] >= 0
        assert serving["support_per_node_s"] >= 0

    def test_cli_runs_serving_leg_by_default(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(
            bench.DATASETS, "paper", lambda quick: (paper_example_database(), 2)
        )
        code = bench.main(
            ["--quick", "--datasets", "paper", "--jobs", "1",
             "--build-jobs", "1", "--output-dir", str(tmp_path), "--no-compare"]
        )
        assert code == 0
        assert "serving[paper]" in capsys.readouterr().out
        report = json.loads(next(tmp_path.glob("BENCH_*.json")).read_text())
        assert report["serving"]["errors"] == 0

    def test_serving_off_by_default(self):
        report = bench.run_bench(
            jobs=(1,),
            build_jobs=(1,),
            datasets={"paper": (paper_example_database(), 2)},
        )
        assert "serving" not in report

    def test_summary_renders_serving_line(self):
        report = {
            "created_utc": "now",
            "machine": {"platform": "p", "cpus": 1},
            "datasets": {},
            "peak_rss_kb": 1,
            "serving": {
                "dataset": "random",
                "clients": 64,
                "requests_per_client": 4,
                "rps": 1000.0,
                "p50_ms": 1.0,
                "p99_ms": 2.0,
                "pool_hits": 10,
                "pool_faults": 1,
                "errors": 0,
                "mismatches": 0,
                "support_queries": 32,
                "support_columnar_s": 0.01,
                "support_per_node_s": 0.1,
                "support_speedup": 10.0,
            },
        }
        summary = bench.format_summary(report)
        assert "serving[random]" in summary
        assert "support kernel" in summary and "10.0x" in summary


class TestTraceOverhead:
    def test_measure_returns_schema(self):
        result = bench.measure_trace_overhead(
            random_database(2, n_transactions=60, n_items=10, max_length=7),
            2,
            repeats=1,
        )
        assert set(result) == {"plain_s", "traced_s", "overhead_pct"}
        assert result["plain_s"] > 0
        assert result["traced_s"] > 0


class TestMineFloors:
    def test_parse_specs(self):
        floors = bench.parse_mine_floors(["quest-T10I4=80000", "a=1,b=2.5"])
        assert floors == {"quest-T10I4": 80000.0, "a": 1.0, "b": 2.5}

    def test_parse_rejects_malformed(self):
        import pytest

        for bad in ["quest-T10I4", "=5", "name=fast"]:
            with pytest.raises(ValueError):
                bench.parse_mine_floors([bad])

    def test_floor_passes_within_tolerance(self):
        report = _tiny_run()
        rate = report["datasets"]["paper"]["mine"]["1"]["nodes_per_s"] or 1
        # The measured rate itself sits above rate * (1 - tolerance).
        assert bench.check_mine_floors(report, {"paper": float(rate)}, 0.3) == []

    def test_floor_violation_reported(self):
        report = _tiny_run()
        failures = bench.check_mine_floors(report, {"paper": 1e12}, 0.3)
        assert len(failures) == 1 and "paper/mine@1" in failures[0]

    def test_missing_dataset_fails_the_gate(self):
        report = _tiny_run()
        failures = bench.check_mine_floors(report, {"quest-T10I4": 1.0}, 0.3)
        assert len(failures) == 1 and "no serial mine leg" in failures[0]

    def test_cli_gates_on_floor(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(
            bench.DATASETS, "paper", lambda quick: (paper_example_database(), 2)
        )
        code = bench.main(
            ["--quick", "--datasets", "paper", "--jobs", "1",
             "--build-jobs", "1", "--output-dir", str(tmp_path), "--no-serving",
             "--no-compare", "--mine-floor", "paper=1e12"]
        )
        assert code == 1
        assert "floor" in capsys.readouterr().err

    def test_cli_rejects_malformed_floor(self, tmp_path):
        code = bench.main(
            ["--mine-floor", "paper", "--output-dir", str(tmp_path)]
        )
        assert code == 2

    def test_machine_records_kernel_backend(self):
        report = _tiny_run(jobs=(1,))
        assert report["machine"]["kernel_backend"] in {"python", "numpy"}
