"""Smoke tests: the fast example scripts run end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "itemsets appear in at least 3 of 5 baskets" in out
    assert "support of {beer, diapers} = 3" in out


def test_market_basket(capsys):
    out = run_example("market_basket.py", capsys)
    assert "frequent itemsets" in out
    assert "confidence" in out


@pytest.mark.slow
def test_memory_budget(capsys):
    out = run_example("memory_budget.py", capsys)
    assert "ternary CFP-tree" in out
    assert "THRASHING" in out
    assert "in core" in out


def test_all_examples_compile():
    for script in EXAMPLES.glob("*.py"):
        source = script.read_text()
        compile(source, str(script), "exec")
