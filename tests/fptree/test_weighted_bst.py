"""Tests for the §2.2 weight-balanced sibling BST rebuild."""

from hypothesis import given, settings

from repro.fptree.ternary import TernaryFPTree
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy, random_database


def build(database, min_support=1):
    table, transactions = prepare_transactions(database, min_support)
    tree = TernaryFPTree.from_rank_transactions(transactions, len(table))
    return table, transactions, tree


class TestFind:
    def test_finds_existing_prefixes(self):
        tree = TernaryFPTree(4)
        tree.insert([1, 2, 3])
        tree.insert([1, 4])
        assert tree.find([1, 2, 3]) != 0
        assert tree.find([1, 4]) != 0
        assert tree.find([1, 2]) != 0  # interior prefix exists too

    def test_missing_prefix(self):
        tree = TernaryFPTree(4)
        tree.insert([1, 2])
        assert tree.find([2]) == 0
        assert tree.find([1, 3]) == 0

    def test_counts_comparisons(self):
        tree = TernaryFPTree(4)
        tree.insert([1])
        tree.insert([2])
        before = tree.comparisons
        tree.find([2])
        assert tree.comparisons > before


class TestRebuild:
    def test_structure_preserved(self):
        db = random_database(4, n_transactions=80, n_items=12, max_length=8)
        table, transactions, tree = build(db)
        reference = {
            rank: sorted(
                (tuple(tree.path_to_root(n)), tree.count[n])
                for n in tree.nodes_of(rank)
            )
            for rank in range(1, len(table) + 1)
        }
        tree.rebuild_weight_balanced()
        for rank in range(1, len(table) + 1):
            rebuilt = sorted(
                (tuple(tree.path_to_root(n)), tree.count[n])
                for n in tree.nodes_of(rank)
            )
            assert rebuilt == reference[rank]
        # Every prefix is still findable.
        for ranks in transactions:
            assert tree.find(ranks) != 0

    def test_skewed_lookups_get_cheaper(self):
        # Siblings 1..30 inserted in order degenerate the BST into a
        # right spine; lookups of the heavy item then cost ~its rank.
        tree = TernaryFPTree(30)
        for rank in range(1, 31):
            tree.insert([rank])
        for __ in range(200):
            tree.insert([30])  # make rank 30 dominate the weight
        tree.comparisons = 0
        for __ in range(100):
            tree.find([30])
        degenerate = tree.comparisons
        tree.rebuild_weight_balanced()
        tree.comparisons = 0
        for __ in range(100):
            tree.find([30])
        balanced = tree.comparisons
        assert balanced < degenerate / 3

    @settings(max_examples=25, deadline=None)
    @given(db_strategy)
    def test_property_rebuild_is_lossless(self, database):
        table, transactions, tree = build(database)
        before = {
            rank: sorted(
                (tuple(tree.path_to_root(n)), tree.count[n])
                for n in tree.nodes_of(rank)
            )
            for rank in range(1, len(table) + 1)
        }
        tree.rebuild_weight_balanced()
        after = {
            rank: sorted(
                (tuple(tree.path_to_root(n)), tree.count[n])
                for n in tree.nodes_of(rank)
            )
            for rank in range(1, len(table) + 1)
        }
        assert after == before
