"""Unit tests for the ternary physical FP-tree and Table-1 accounting."""

import pytest
from hypothesis import given

from repro.errors import TreeError
from repro.fptree import FPTree, TernaryFPTree
from repro.fptree.accounting import (
    FieldDistribution,
    ternary_field_distributions,
    zero_byte_fraction,
)
from repro.fptree.ternary import PAPER_BASELINE_NODE_SIZE, TERNARY_NODE_SIZE
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy


class TestBuild:
    def test_node_sizes(self):
        assert TERNARY_NODE_SIZE == 28
        assert PAPER_BASELINE_NODE_SIZE == 40

    def test_matches_logical_tree_node_count(self, small_db):
        table, transactions = prepare_transactions(small_db, 2)
        logical = FPTree.from_rank_transactions(transactions, len(table))
        ternary = TernaryFPTree.from_rank_transactions(transactions, len(table))
        assert ternary.node_count == logical.node_count

    def test_memory_bytes(self):
        tree = TernaryFPTree(2)
        tree.insert([1, 2])
        assert tree.memory_bytes == 2 * 28
        assert tree.baseline_memory_bytes == 2 * 40

    def test_counts_cumulative(self):
        tree = TernaryFPTree(3)
        tree.insert([1, 2])
        tree.insert([1, 2, 3])
        # Node 1 is rank 1 with count 2.
        assert tree.item[1] == 1
        assert tree.count[1] == 2

    def test_bst_sibling_search(self):
        tree = TernaryFPTree(5)
        tree.insert([3])
        tree.insert([1])
        tree.insert([5])
        tree.insert([1])  # existing node, only count bump
        assert tree.node_count == 3
        assert tree.count[tree.suffix[0]] == 1  # rank 3 at BST root
        # rank 1 hangs left of 3, rank 5 right of 3.
        root_child = tree.suffix[0]
        assert tree.item[tree.left[root_child]] == 1
        assert tree.item[tree.right[root_child]] == 5

    def test_comparisons_counted(self):
        tree = TernaryFPTree(3)
        tree.insert([1])
        assert tree.comparisons == 0  # first child created without compare
        tree.insert([1])
        assert tree.comparisons == 1

    def test_invalid_field(self):
        with pytest.raises(TreeError):
            TernaryFPTree(1).field_values("bogus")


class TestTraversal:
    def test_nodelink_traversal(self):
        tree = TernaryFPTree(3)
        tree.insert([1, 3])
        tree.insert([2, 3])
        nodes = list(tree.nodes_of(3))
        assert len(nodes) == 2
        assert all(tree.item[n] == 3 for n in nodes)

    def test_path_to_root(self):
        tree = TernaryFPTree(3)
        tree.insert([1, 2, 3])
        (leaf,) = tree.nodes_of(3)
        assert tree.path_to_root(leaf) == [1, 2]

    @given(db_strategy)
    def test_equivalent_to_logical_tree(self, database):
        table, transactions = prepare_transactions(database, 2)
        logical = FPTree.from_rank_transactions(transactions, len(table))
        ternary = TernaryFPTree.from_rank_transactions(transactions, len(table))
        assert ternary.node_count == logical.node_count
        for rank in range(1, len(table) + 1):
            logical_paths = sorted(
                (tuple(p), c) for p, c in logical.prefix_paths(rank)
            )
            ternary_paths = sorted(
                (tuple(ternary.path_to_root(n)), ternary.count[n])
                for n in ternary.nodes_of(rank)
            )
            assert ternary_paths == logical_paths


class TestAccounting:
    def test_field_distribution_add(self):
        dist = FieldDistribution()
        dist.add(0)
        dist.add(0x90)
        dist.add(0x123456)
        assert dist.counts == [0, 1, 0, 1, 1]
        assert dist.total == 3
        assert dist.zero_bytes == 4 + 3 + 1

    def test_fractions_sum_to_one(self):
        dist = FieldDistribution()
        for value in (0, 1, 255, 70000):
            dist.add(value)
        assert sum(dist.fractions()) == pytest.approx(1.0)

    def test_empty_distribution(self):
        dist = FieldDistribution()
        assert dist.fractions() == [0.0] * 5
        assert zero_byte_fraction({"f": dist}) == 0.0

    def test_distributions_cover_all_nodes(self, small_db):
        __, transactions = prepare_transactions(small_db, 2)
        tree = TernaryFPTree.from_rank_transactions(transactions, 4)
        dists = ternary_field_distributions(tree)
        assert set(dists) == {
            "item",
            "count",
            "parent",
            "nodelink",
            "left",
            "right",
            "suffix",
        }
        for dist in dists.values():
            assert dist.total == tree.node_count

    def test_small_tree_is_mostly_zero_bytes(self, small_db):
        # Tiny trees have tiny values: zero fraction must be very high.
        __, transactions = prepare_transactions(small_db, 2)
        tree = TernaryFPTree.from_rank_transactions(transactions, 4)
        assert zero_byte_fraction(ternary_field_distributions(tree)) > 0.5

    def test_left_right_mostly_null(self, small_db):
        # The key §3.1 observation: sibling pointers are rarely set.
        __, transactions = prepare_transactions(small_db, 2)
        tree = TernaryFPTree.from_rank_transactions(transactions, 4)
        dists = ternary_field_distributions(tree)
        for field in ("left", "right"):
            null_fraction = dists[field].fractions()[4]
            assert null_fraction >= 0.5
