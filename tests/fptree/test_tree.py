"""Unit tests for the logical FP-tree."""

import pytest
from hypothesis import given

from repro.errors import TreeError
from repro.fptree import FPTree
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy


def build(database, min_support):
    table, transactions = prepare_transactions(database, min_support)
    return table, FPTree.from_rank_transactions(transactions, len(table))


class TestBuild:
    def test_empty(self):
        tree = FPTree(0)
        assert tree.is_empty()
        assert tree.node_count == 0

    def test_negative_ranks_rejected(self):
        with pytest.raises(TreeError):
            FPTree(-1)

    def test_shared_prefixes_merge(self):
        tree = FPTree(3)
        tree.insert([1, 2])
        tree.insert([1, 2, 3])
        tree.insert([1, 3])
        # Nodes: 1, 2 (under 1), 3 (under 2), 3 (under 1) -> 4 nodes.
        assert tree.node_count == 4

    def test_counts_cumulative(self):
        tree = FPTree(3)
        tree.insert([1, 2])
        tree.insert([1, 2, 3])
        node1 = tree.root.children[1]
        assert node1.count == 2
        assert node1.children[2].count == 2
        assert node1.children[2].children[3].count == 1

    def test_insert_with_count(self):
        tree = FPTree(2)
        tree.insert([1, 2], count=5)
        assert tree.rank_count(2) == 5


class TestNodelinks:
    def test_all_nodes_of_rank_reachable(self):
        tree = FPTree(3)
        tree.insert([1, 3])
        tree.insert([2, 3])
        tree.insert([3])
        nodes = list(tree.nodes_of(3))
        assert len(nodes) == 3
        assert all(node.rank == 3 for node in nodes)

    def test_rank_count_matches_nodelink_sum(self):
        tree = FPTree(3)
        tree.insert([1, 3], count=2)
        tree.insert([2, 3], count=3)
        assert tree.rank_count(3) == sum(n.count for n in tree.nodes_of(3))


class TestPrefixPaths:
    def test_paper_style_support_query(self, small_db):
        # Support of {3, 4}: sum counts of nodes of rank(4) whose path
        # contains rank(3).
        table, tree = build(small_db, 2)
        r3, r4 = table.rank_of[3], table.rank_of[4]
        least, other = max(r3, r4), min(r3, r4)
        support = sum(
            count for path, count in tree.prefix_paths(least) if other in path
        )
        expected = sum(1 for t in small_db if 3 in t and 4 in t)
        assert support == expected

    def test_paths_ascending(self, small_db):
        __, tree = build(small_db, 2)
        for rank in tree.active_ranks_descending():
            for path, __ in tree.prefix_paths(rank):
                assert path == sorted(path)
                assert all(r < rank for r in path)


class TestSinglePath:
    def test_detects_single_path(self):
        tree = FPTree(3)
        tree.insert([1, 2, 3])
        tree.insert([1, 2])
        assert tree.single_path() == [(1, 2), (2, 2), (3, 1)]

    def test_branching_is_not_single_path(self):
        tree = FPTree(3)
        tree.insert([1, 2])
        tree.insert([1, 3])
        assert tree.single_path() is None

    def test_empty_tree_is_trivial_single_path(self):
        assert FPTree(2).single_path() == []


class TestInvariants:
    @given(db_strategy)
    def test_node_count_and_counts(self, database):
        table, tree = build(database, 2)
        nodes = list(tree.iter_nodes())
        assert len(nodes) == tree.node_count
        # Cumulative count equals own insertions plus children's counts
        # (every path through a child also passes through the parent).
        for node in nodes:
            child_sum = sum(c.count for c in node.children.values())
            assert node.count >= child_sum
        # Root's children sum to number of non-empty prepared transactions.
        __, prepared = prepare_transactions(database, 2)
        top_sum = sum(c.count for c in tree.root.children.values())
        assert top_sum == len(prepared)

    @given(db_strategy)
    def test_rank_counts_match_database(self, database):
        table, tree = build(database, 2)
        __, prepared = prepare_transactions(database, 2)
        for rank in range(1, len(table) + 1):
            expected = sum(1 for t in prepared if rank in t)
            assert tree.rank_count(rank) == expected
