"""Correctness tests for the reference FP-growth miner."""

from hypothesis import given, settings

from repro.algorithms.bruteforce import brute_force
from repro.fptree.growth import (
    CountCollector,
    ListCollector,
    fp_growth,
    mine_ranks,
)
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy, normalize, random_database


class TestSmallCases:
    def test_single_transaction(self):
        results = fp_growth([[1, 2]], min_support=1)
        assert normalize(results) == {
            frozenset([1]): 1,
            frozenset([2]): 1,
            frozenset([1, 2]): 1,
        }

    def test_min_support_filters(self):
        results = fp_growth([[1, 2], [1], [2]], min_support=2)
        assert normalize(results) == {frozenset([1]): 2, frozenset([2]): 2}

    def test_no_frequent_items(self):
        assert fp_growth([[1], [2]], min_support=2) == []

    def test_paper_example(self, small_db):
        assert normalize(fp_growth(small_db, 2)) == normalize(
            brute_force(small_db, 2)
        )

    def test_string_items(self):
        db = [["milk", "bread"], ["milk"], ["bread", "milk"]]
        results = normalize(fp_growth(db, 2))
        assert results[frozenset(["milk"])] == 3
        assert results[frozenset(["milk", "bread"])] == 2


class TestSinglePathShortcut:
    def test_pure_chain_database(self):
        # All transactions nest -> the tree is one path.
        db = [[1], [1, 2], [1, 2, 3], [1, 2, 3, 4]]
        assert normalize(fp_growth(db, 1)) == normalize(brute_force(db, 1))

    def test_count_collector_matches_list(self):
        db = [[1, 2, 3, 4, 5]] * 3 + [[1, 2], [2, 3, 4]]
        table, transactions = prepare_transactions(db, 2)
        listed = mine_ranks(transactions, len(table), 2, ListCollector())
        counted = mine_ranks(transactions, len(table), 2, CountCollector())
        assert counted.count == len(listed.itemsets)

    def test_subset_supports_on_chain(self):
        db = [[1], [1, 2], [1, 2, 3]]
        results = normalize(fp_growth(db, 1))
        assert results[frozenset([1])] == 3
        assert results[frozenset([1, 2])] == 2
        assert results[frozenset([1, 2, 3])] == 1
        assert results[frozenset([2, 3])] == 1
        assert results[frozenset([3])] == 1


class TestAgainstBruteForce:
    def test_random_databases(self):
        for seed in range(8):
            db = random_database(seed)
            for min_support in (2, 4, 8):
                assert normalize(fp_growth(db, min_support)) == normalize(
                    brute_force(db, min_support)
                ), f"seed={seed} min_support={min_support}"

    @settings(max_examples=40, deadline=None)
    @given(db_strategy)
    def test_property_equivalence(self, database):
        assert normalize(fp_growth(database, 2)) == normalize(
            brute_force(database, 2)
        )

    @settings(max_examples=25, deadline=None)
    @given(db_strategy)
    def test_supports_are_exact(self, database):
        for itemset, support in fp_growth(database, 2):
            actual = sum(1 for t in database if set(itemset) <= set(t))
            assert actual == support
