"""Tests for memory-budgeted mining."""

import pytest

from repro.budget import mine_with_budget
from repro.core.cfp_growth import cfp_growth
from repro.errors import ExperimentError
from repro.storage.pagefile import PAGE_SIZE
from tests.conftest import normalize, random_database


@pytest.fixture(scope="module")
def workload():
    # Sized so the CFP-array exceeds the two-page minimum budget.
    db = random_database(17, n_transactions=900, n_items=60, max_length=16)
    expected = normalize(cfp_growth(db, 5))
    return db, expected


class TestInCore:
    def test_generous_budget_stays_in_memory(self, workload):
        db, expected = workload
        itemsets, report = mine_with_budget(db, 5, memory_budget=64 * 1024 * 1024)
        assert not report.went_out_of_core
        assert report.page_faults == 0
        assert normalize(itemsets) == expected

    def test_report_sizes(self, workload):
        db, __ = workload
        __, report = mine_with_budget(db, 5, memory_budget=64 * 1024 * 1024)
        assert 0 < report.tree_bytes
        assert 0 < report.array_bytes


class TestOutOfCore:
    def test_tight_budget_spills(self, workload, tmp_path):
        db, expected = workload
        itemsets, report = mine_with_budget(
            db, 5, memory_budget=2 * PAGE_SIZE, spill_dir=tmp_path
        )
        assert report.went_out_of_core
        assert report.array_bytes > report.budget_bytes
        assert report.page_faults > 0
        assert normalize(itemsets) == expected

    def test_spill_file_cleaned_up(self, workload, tmp_path):
        db, __ = workload
        mine_with_budget(db, 5, memory_budget=2 * PAGE_SIZE, spill_dir=tmp_path)
        assert list(tmp_path.iterdir()) == []

    def test_results_identical_across_budgets(self, workload):
        db, expected = workload
        for budget in (2 * PAGE_SIZE, 8 * PAGE_SIZE, 1 << 26):
            itemsets, __ = mine_with_budget(db, 5, memory_budget=budget)
            assert normalize(itemsets) == expected, budget


class TestPartitionedSpill:
    """The default out-of-core path is the tiered partitioned store."""

    def test_report_carries_tier_fields(self, workload, tmp_path):
        db, expected = workload
        itemsets, report = mine_with_budget(
            db, 5, memory_budget=2 * PAGE_SIZE, spill_dir=tmp_path
        )
        assert report.went_out_of_core
        assert report.partitions >= 1
        assert report.hot_bytes >= 0
        assert report.bytes_read > 0
        assert normalize(itemsets) == expected

    def test_legacy_path_still_available(self, workload, tmp_path):
        db, expected = workload
        itemsets, report = mine_with_budget(
            db, 5, memory_budget=2 * PAGE_SIZE, spill_dir=tmp_path,
            partitioned=False,
        )
        assert report.went_out_of_core
        assert report.partitions == 0  # monolithic spill has no manifest
        assert normalize(itemsets) == expected

    def test_partitioned_and_legacy_agree(self, workload, tmp_path):
        db, __ = workload
        tiered, __ = mine_with_budget(
            db, 5, memory_budget=2 * PAGE_SIZE, spill_dir=tmp_path
        )
        legacy, __ = mine_with_budget(
            db, 5, memory_budget=2 * PAGE_SIZE, spill_dir=tmp_path,
            partitioned=False,
        )
        assert normalize(tiered) == normalize(legacy)


class TestValidation:
    def test_budget_floor(self):
        with pytest.raises(ExperimentError):
            mine_with_budget([[1]], 1, memory_budget=PAGE_SIZE)
