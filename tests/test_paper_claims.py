"""The paper's §3-§4 claims as executable assertions (fast scale).

EXPERIMENTS.md records the full-scale paper-vs-measured comparison; this
module pins the same claims at test scale so a regression in any of them
fails the suite, not just the benchmarks.
"""

import pytest

from repro.core.accounting import cfp_field_distributions
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.datasets.synthetic import make_dataset
from repro.experiments.drivers import run_metered
from repro.fptree.accounting import ternary_field_distributions, zero_byte_fraction
from repro.fptree.ternary import TernaryFPTree
from repro.machine import MachineSpec
from repro.util.items import prepare_transactions


@pytest.fixture(scope="module")
def webdocs():
    database = make_dataset("webdocs", n_transactions=400, seed=19)
    table, transactions = prepare_transactions(database, 12)
    return table, transactions


@pytest.fixture(scope="module")
def cfp_tree(webdocs):
    table, transactions = webdocs
    return TernaryCfpTree.from_rank_transactions(transactions, len(table))


class TestSection31CompressionPotential:
    """§3.1: most FP-tree bytes are zeros."""

    def test_half_the_bytes_are_zero(self, webdocs):
        table, transactions = webdocs
        tree = TernaryFPTree.from_rank_transactions(transactions, len(table))
        fraction = zero_byte_fraction(ternary_field_distributions(tree))
        assert fraction > 0.45  # paper: ~53%

    def test_sibling_pointers_mostly_null(self, webdocs):
        table, transactions = webdocs
        tree = TernaryFPTree.from_rank_transactions(transactions, len(table))
        distributions = ternary_field_distributions(tree)
        for field in ("left", "right"):
            assert distributions[field].fractions()[4] > 0.8  # paper: 99%


class TestSection32CfpTree:
    """§3.2: the structural changes make values tiny."""

    def test_pcount_mostly_zero(self, cfp_tree):
        distributions = cfp_field_distributions(cfp_tree)
        assert distributions["pcount"].fractions()[4] > 0.7  # paper: 97%

    def test_delta_item_one_byte(self, cfp_tree):
        distributions = cfp_field_distributions(cfp_tree)
        fractions = distributions["delta_item"].fractions()
        assert fractions[3] > 0.95
        assert fractions[4] == 0.0  # delta_item is never zero

    def test_pcount_sum_is_transaction_count(self, cfp_tree, webdocs):
        __, transactions = webdocs
        assert cfp_tree.transaction_count == len(transactions)

    def test_average_pcount_below_one(self, cfp_tree):
        # §3.2: "often ... the average value of the non-cumulative count
        # is less than 1" when nodes outnumber transactions.
        if cfp_tree.node_count > cfp_tree.transaction_count:
            assert cfp_tree.transaction_count / cfp_tree.node_count < 1.0


class TestSection33TernaryNodeSizes:
    """§3.3: node footprints and the >90% typical layout."""

    def test_order_of_magnitude_reduction(self, cfp_tree):
        assert cfp_tree.average_node_size() < 40 / 7  # at least 7x (paper 7-25x)

    def test_chains_dominate_on_webdocs(self, cfp_tree):
        stats = cfp_tree.physical_stats()
        assert stats.chain_entries > 0.8 * stats.logical_nodes


class TestSection34CfpArray:
    """§3.4: the mine-phase structure."""

    def test_below_five_bytes_per_node(self, cfp_tree):
        array = convert(cfp_tree)
        assert array.average_node_size() < 5.0

    def test_nodelink_free_sideward_traversal(self, cfp_tree, webdocs):
        table, __ = webdocs
        array = convert(cfp_tree)
        # Item support via subarray scan equals the table's supports.
        for rank in range(1, min(10, len(table)) + 1):
            assert array.rank_support(rank) == table.rank_supports[rank]


class TestSection44OverallBehaviour:
    """§4.4: the three regimes and CFP-growth's wider in-core window."""

    @pytest.fixture(scope="class")
    def quest(self):
        database = make_dataset("quest1", scale=0.05, seed=23)
        table, transactions = prepare_transactions(database, 25)
        return table, transactions

    def test_cfp_beats_fp_under_pressure(self, quest):
        table, transactions = quest
        spec = MachineSpec(physical_memory=64 * 1024)
        fp = run_metered("fp-growth", list(transactions), len(table), 25, 1000, spec)
        cfp = run_metered("cfp-growth", list(transactions), len(table), 25, 1000, spec)
        assert cfp.itemset_count == fp.itemset_count
        assert cfp.peak_bytes < fp.peak_bytes / 4
        assert cfp.total_seconds < fp.total_seconds

    def test_wider_in_core_window(self, quest):
        table, transactions = quest
        # Choose the limit between the two footprints: FP thrashes, CFP not.
        fp_probe = run_metered("fp-growth", list(transactions), len(table), 25, 1000)
        cfp_probe = run_metered("cfp-growth", list(transactions), len(table), 25, 1000)
        limit = (cfp_probe.peak_bytes + fp_probe.peak_bytes) // 2
        spec = MachineSpec(physical_memory=limit)
        fp = run_metered("fp-growth", list(transactions), len(table), 25, 1000, spec)
        cfp = run_metered("cfp-growth", list(transactions), len(table), 25, 1000, spec)
        assert fp.estimate.thrashed
        assert not cfp.estimate.thrashed
