"""Crash recovery for the streaming build: torn checkpoints and resume."""

from __future__ import annotations

import os
import random

import pytest

from repro import faultinject, obs
from repro.errors import DatasetError
from repro.streaming import (
    CountingPhase,
    StreamingBuilder,
    mine_in_batches,
    mine_in_batches_resilient,
)


@pytest.fixture(autouse=True)
def _clean():
    faultinject.reset()
    yield
    faultinject.reset()
    obs.metrics.reset()


def _batches(seed=7, n_batches=4, per_batch=40):
    rng = random.Random(seed)
    return [
        [
            [rng.randrange(1, 30) for __ in range(rng.randrange(2, 8))]
            for __ in range(per_batch)
        ]
        for __ in range(n_batches)
    ]


@pytest.fixture
def batches():
    return _batches()


def _table_for(batches, min_support=5):
    counting = CountingPhase()
    for batch in batches:
        counting.add_batch(batch)
    return counting.finish(min_support)


class TestResumeOrRestart:
    def test_missing_checkpoint_starts_fresh(self, tmp_path, batches):
        builder, resumed = StreamingBuilder.resume_or_restart(
            _table_for(batches), tmp_path / "never-written.cfpt"
        )
        assert not resumed
        assert builder.batches_consumed == 0

    def test_healthy_checkpoint_resumes_the_cursor(self, tmp_path, batches):
        table = _table_for(batches)
        checkpoint = tmp_path / "build.cfpt"
        builder = StreamingBuilder(table)
        builder.add_batch(batches[0])
        builder.add_batch(batches[1])
        builder.checkpoint(checkpoint)

        resumed, ok = StreamingBuilder.resume_or_restart(table, checkpoint)
        assert ok
        assert resumed.batches_consumed == 2
        for batch in batches[2:]:
            resumed.add_batch(batch)
        assert sorted(resumed.finish()) == sorted(mine_in_batches(batches, 5))

    def test_torn_checkpoint_is_discarded_and_counted(self, tmp_path, batches):
        table = _table_for(batches)
        checkpoint = tmp_path / "build.cfpt"
        builder = StreamingBuilder(table)
        builder.add_batch(batches[0])
        builder.checkpoint(checkpoint)
        with open(checkpoint, "r+b") as handle:  # the crash tore the write
            handle.truncate(os.path.getsize(checkpoint) // 2)

        obs.metrics.reset()
        fresh, resumed = StreamingBuilder.resume_or_restart(table, checkpoint)
        assert not resumed
        assert fresh.batches_consumed == 0
        assert obs.metrics.get("streaming.checkpoint_discarded") == 1

    def test_foreign_checkpoint_is_discarded(self, tmp_path, batches):
        # A checkpoint from a different ItemTable must restart, not crash.
        checkpoint = tmp_path / "build.cfpt"
        other = _batches(seed=99)
        foreign = StreamingBuilder(_table_for(other))
        foreign.add_batch(other[0])
        foreign.checkpoint(checkpoint)

        builder, resumed = StreamingBuilder.resume_or_restart(
            _table_for(batches), checkpoint
        )
        assert not resumed
        assert builder.batches_consumed == 0


class TestResilientPipeline:
    def test_matches_the_plain_pipeline(self, tmp_path, batches):
        want = mine_in_batches(batches, 5)
        got = mine_in_batches_resilient(batches, 5, tmp_path / "ck.cfpt")
        assert sorted(got) == sorted(want)

    def test_recovers_from_an_injected_torn_checkpoint(self, tmp_path, batches):
        checkpoint = tmp_path / "ck.cfpt"
        want = sorted(mine_in_batches(batches, 5))
        # First run completes, leaving a full checkpoint behind...
        assert sorted(mine_in_batches_resilient(batches, 5, checkpoint)) == want
        # ...which the injected fault tears on the next run's first write,
        # as if that run crashed mid-checkpoint. The run after it must
        # discard the torn file and still produce identical output.
        faultinject.install("checkpoint.write:truncate:times=1")
        assert sorted(mine_in_batches_resilient(batches, 5, checkpoint)) == want
        faultinject.reset()
        assert sorted(mine_in_batches_resilient(batches, 5, checkpoint)) == want

    def test_resumes_mid_stream_after_a_crash(self, tmp_path, batches):
        checkpoint = tmp_path / "ck.cfpt"
        table = _table_for(batches)
        # Simulate a run that died after checkpointing two batches.
        builder = StreamingBuilder(table)
        builder.add_batch(batches[0])
        builder.add_batch(batches[1])
        builder.checkpoint(checkpoint)

        got = mine_in_batches_resilient(batches, 5, checkpoint)
        assert sorted(got) == sorted(mine_in_batches(batches, 5))

    def test_checkpoint_from_a_longer_stream_is_rejected(self, tmp_path, batches):
        # Same table (so the fingerprint check passes) but a cursor past
        # the provided stream: the wrong-checkpoint guard must fire.
        checkpoint = tmp_path / "ck.cfpt"
        builder = StreamingBuilder(_table_for(batches[:2]))
        for batch in batches:
            builder.add_batch(batch)
        builder.checkpoint(checkpoint)
        with pytest.raises(DatasetError):
            mine_in_batches_resilient(batches[:2], 5, checkpoint)
