"""Tests for direct support queries (paper §2.1's example)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.errors import TreeError
from repro.fptree.tree import FPTree
from repro.util.items import prepare_transactions
from repro.util.queries import (
    itemset_support,
    support_in_cfp_array,
    support_in_fp_tree,
)
from tests.conftest import db_strategy


def build(database, min_support=1):
    table, transactions = prepare_transactions(database, min_support)
    fp = FPTree.from_rank_transactions(transactions, len(table))
    array = convert(TernaryCfpTree.from_rank_transactions(transactions, len(table)))
    return table, fp, array


class TestPaperExample:
    DB = [
        [1, 2, 3],
        [1, 2, 4],
        [1, 3, 4],
        [2, 3, 4],
        [3, 4],
        [1, 2, 3, 4],
    ]

    def test_pairwise_supports(self):
        table, fp, array = build(self.DB)
        # §2.1: support of {3, 4} = sum over prefixes containing both.
        expected = sum(1 for t in self.DB if {3, 4} <= set(t))
        assert itemset_support(fp, table, [3, 4]) == expected
        assert itemset_support(array, table, [3, 4]) == expected

    def test_single_item(self):
        table, fp, array = build(self.DB)
        assert itemset_support(fp, table, [3]) == 5
        assert itemset_support(array, table, [3]) == 5

    def test_unknown_item_is_zero(self):
        table, fp, array = build(self.DB)
        assert itemset_support(fp, table, [99]) == 0
        assert itemset_support(array, table, [3, 99]) == 0

    def test_empty_rejected(self):
        table, fp, array = build(self.DB)
        with pytest.raises(TreeError):
            support_in_fp_tree(fp, [])
        with pytest.raises(TreeError):
            support_in_cfp_array(array, [])


def support_per_node_reference(array, ranks):
    """The pre-columnar implementation of ``support_in_cfp_array``.

    Per-node sideward scan plus one ``path_ranks`` backward walk per node —
    kept verbatim as the parity reference for the columnar port (the real
    implementation now goes through ``prefix_paths``, and INV008 forbids
    this shape in ``repro.util.queries``).
    """
    wanted = sorted(set(ranks))
    if wanted[0] < 1 or wanted[-1] > array.n_ranks:
        return 0
    least = wanted[-1]
    others = set(wanted[:-1])
    support = 0
    for local, __, __, count in array.iter_subarray(least):
        if not others:
            support += count
        elif others <= set(array.path_ranks(least, local)):
            support += count
    return support


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        db_strategy,
        st.sets(st.integers(min_value=0, max_value=9), min_size=1, max_size=4),
    )
    def test_both_structures_agree_with_counting(self, database, items):
        table, fp, array = build(database)
        expected = sum(1 for t in database if items <= set(t))
        assert itemset_support(fp, table, items) == expected
        assert itemset_support(array, table, items) == expected

    @settings(max_examples=50, deadline=None)
    @given(
        db_strategy,
        st.sets(st.integers(min_value=-2, max_value=12), min_size=1, max_size=5),
    )
    def test_columnar_port_matches_per_node_walk(self, database, ranks):
        """The columnar query is count-identical to the old per-node walk."""
        table, __, array = build(database)
        if not table:
            return
        # Exercise out-of-range ranks too: both paths must agree on 0.
        assert support_in_cfp_array(array, ranks) == support_per_node_reference(
            array, ranks
        )

    @settings(max_examples=20, deadline=None)
    @given(
        db_strategy,
        st.sets(st.integers(min_value=1, max_value=8), min_size=2, max_size=4),
    )
    def test_columnar_port_matches_with_cache_enabled(self, database, ranks):
        """Memoized resolve (cache on) changes nothing about the counts."""
        table, __, array = build(database)
        if not table:
            return
        array.set_cache_budget(1 << 16)
        first = support_in_cfp_array(array, ranks)
        # Repeat: served from the memo/cache, must still agree.
        assert support_in_cfp_array(array, ranks) == first
        assert first == support_per_node_reference(array, ranks)
