"""Tests for the columnar varint kernels (`decode_triples_columns`, `count_triples`).

The columnar decode has two backends — the stdlib scalar loop and the
optional vectorized numpy path gated on availability and on the
``_NP_MIN_BYTES`` threshold — and both must produce identical columns
and raise the scalar path's exact errors on corrupt input. The numpy
legs skip cleanly when numpy is absent (it is never a dependency).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compress import varint
from repro.errors import CorruptBufferError

numpy_only = pytest.mark.skipif(
    varint._np is None, reason="numpy not importable (optional fast path)"
)

#: ``(delta_item, dpos, count)`` with the signed ``dpos`` middle field.
triples_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 20),
        st.integers(min_value=-(1 << 20), max_value=1 << 20),
        st.integers(min_value=0, max_value=1 << 40),
    ),
    max_size=40,
)


def encode(triples):
    buf = bytearray(sum(varint.triple_size(*t) for t in triples))
    varint.encode_triples(buf, 0, triples)
    return bytes(buf)


def columns_as_rows(columns):
    return list(zip(*columns))


class TestDecodeTriplesColumns:
    def test_matches_decode_triples(self):
        triples = [(3, 0, 7), (0, -4, 1), (129, 5, 1 << 21)]
        buf = encode(triples)
        rows = varint.decode_triples(buf, 0, len(buf))
        assert columns_as_rows(varint.decode_triples_columns(buf, 0, len(buf))) == rows

    def test_empty_window(self):
        columns = varint.decode_triples_columns(b"\x01\x02", 1, 1)
        assert all(len(column) == 0 for column in columns)
        assert len(columns) == 4

    def test_bounds_outside_buffer_raise(self):
        with pytest.raises(CorruptBufferError):
            varint.decode_triples_columns(b"\x00", 0, 2)
        with pytest.raises(CorruptBufferError):
            varint.decode_triples_columns(b"\x00", -1, 1)

    def test_truncated_varint_raises(self):
        buf = encode([(1, 2, 3)])[:-1] + b"\x80"  # continuation bit at the end
        with pytest.raises(CorruptBufferError):
            varint.decode_triples_columns(buf, 0, len(buf))

    def test_non_triple_varint_count_raises(self):
        buf = varint.encode(1) + varint.encode(2)  # 2 varints, not a triple
        with pytest.raises(CorruptBufferError):
            varint.decode_triples_columns(buf, 0, len(buf))

    def test_accepts_memoryview_and_bytearray(self):
        triples = [(5, -1, 9)]
        buf = encode(triples)
        want = columns_as_rows(varint.decode_triples_columns(buf, 0, len(buf)))
        for wrapped in (bytearray(buf), memoryview(buf)):
            got = columns_as_rows(varint.decode_triples_columns(wrapped, 0, len(buf)))
            assert got == want

    @given(triples=triples_strategy)
    def test_property_matches_decode_triples(self, triples):
        buf = encode(triples)
        rows = varint.decode_triples(buf, 0, len(buf))
        assert columns_as_rows(varint.decode_triples_columns(buf, 0, len(buf))) == rows


class TestBackendParity:
    """Scalar and numpy decodes are interchangeable, byte for byte."""

    @numpy_only
    @given(triples=triples_strategy)
    def test_numpy_identical_to_scalar(self, triples):
        buf = encode(triples)
        view = memoryview(buf)
        scalar = varint._decode_triples_columns_scalar(view, 0, len(buf))
        vectorized = varint._decode_triples_columns_np(view, 0, len(buf))
        if triples:  # the numpy path may decline (None) only on anomalies
            assert vectorized is not None
            assert columns_as_rows(vectorized) == columns_as_rows(scalar)

    @numpy_only
    def test_threshold_gates_numpy(self, monkeypatch):
        calls = []
        real = varint._decode_triples_columns_np

        def recording(view, start, end):
            calls.append(end - start)
            return real(view, start, end)

        monkeypatch.setattr(varint, "_decode_triples_columns_np", recording)
        small = encode([(1, 2, 3)])
        assert len(small) < varint._NP_MIN_BYTES
        varint.decode_triples_columns(small, 0, len(small))
        assert calls == []  # tiny subarrays stay on the scalar loop
        big = encode([(i, -i, i * 7) for i in range(200)])
        assert len(big) >= varint._NP_MIN_BYTES
        want = varint.decode_triples(big, 0, len(big))
        got = columns_as_rows(varint.decode_triples_columns(big, 0, len(big)))
        assert calls and got == want

    @numpy_only
    def test_numpy_leg_corruption_matches_scalar_error(self, monkeypatch):
        # Past the threshold the vectorized path must decline corrupt
        # buffers and re-raise through the scalar loop.
        monkeypatch.setattr(varint, "_NP_MIN_BYTES", 0)
        buf = encode([(i, 0, i) for i in range(120)])[:-1] + b"\x80"
        with pytest.raises(CorruptBufferError):
            varint.decode_triples_columns(buf, 0, len(buf))

    def test_scalar_backend_when_numpy_disabled(self, monkeypatch):
        monkeypatch.setattr(varint, "_np", None)
        triples = [(i, -i, i) for i in range(150)]
        buf = encode(triples)
        rows = varint.decode_triples(buf, 0, len(buf))
        assert columns_as_rows(varint.decode_triples_columns(buf, 0, len(buf))) == rows


class TestCountTriples:
    def test_counts_without_decoding(self):
        triples = [(3, 0, 7), (0, -4, 1), (129, 5, 1 << 21)]
        buf = encode(triples)
        assert varint.count_triples(buf, 0, len(buf)) == 3

    def test_empty_window_is_zero(self):
        assert varint.count_triples(b"\x01", 1, 1) == 0

    def test_bounds_outside_buffer_raise(self):
        with pytest.raises(CorruptBufferError):
            varint.count_triples(b"\x00", 0, 2)

    def test_truncated_varint_raises(self):
        buf = encode([(1, 2, 3)])[:-1] + b"\x80"
        with pytest.raises(CorruptBufferError):
            varint.count_triples(buf, 0, len(buf))

    def test_non_triple_varint_count_raises(self):
        buf = varint.encode(1) + varint.encode(2)
        with pytest.raises(CorruptBufferError):
            varint.count_triples(buf, 0, len(buf))

    @given(triples=triples_strategy)
    def test_property_matches_len(self, triples):
        buf = encode(triples)
        assert varint.count_triples(buf, 0, len(buf)) == len(triples)
