"""Property-based round-trip tests for the compression codecs.

These pin down the three contracts the static checkers rely on:

* **identity** — ``decode(encode(v)) == v`` for every representable value,
* **canonicality** — the encoder emits the unique shortest form, and the
  decoder's consumed length equals :func:`varint.encoded_size` (the exact
  property :mod:`repro.analysis.arraycheck` uses to flag ARR010),
* **size bounds** — encoded lengths match the §2.3 formulas byte for byte.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.compress import varint, zero_suppression

varint_values = st.integers(min_value=0, max_value=varint.MAX_VALUE)
u32_values = st.integers(min_value=0, max_value=zero_suppression.MAX_VALUE)
signed_values = st.integers(
    min_value=-(1 << 62), max_value=(1 << 62) - 1
)


class TestVarintProperties:
    @given(varint_values)
    def test_roundtrip_identity(self, value):
        encoded = varint.encode(value)
        decoded, consumed = varint.decode_from(encoded)
        assert decoded == value
        assert consumed == len(encoded)

    @given(varint_values)
    def test_encoding_is_canonical(self, value):
        encoded = varint.encode(value)
        assert len(encoded) == varint.encoded_size(value)
        # Shortest form: the final byte is never a redundant zero
        # continuation (except for the value 0 itself).
        if value:
            assert encoded[-1] != 0

    @given(varint_values)
    def test_size_bound(self, value):
        size = len(varint.encode(value))
        assert 1 <= size <= varint.MAX_ENCODED_LENGTH
        assert size == max(1, -(-value.bit_length() // 7))

    @given(varint_values, st.binary(min_size=0, max_size=8))
    def test_decode_ignores_trailing_bytes(self, value, suffix):
        encoded = varint.encode(value)
        decoded, consumed = varint.decode_from(encoded + suffix)
        assert (decoded, consumed) == (value, len(encoded))

    @given(st.lists(varint_values, min_size=0, max_size=30))
    def test_stream_roundtrip(self, values):
        stream = b"".join(varint.encode(v) for v in values)
        offset = 0
        decoded = []
        while offset < len(stream):
            value, offset = varint.decode_from(stream, offset)
            decoded.append(value)
        assert decoded == values

    @given(varint_values)
    def test_skip_matches_decode(self, value):
        encoded = varint.encode(value) + b"\x01"
        assert varint.skip(encoded) == varint.decode_from(encoded)[1]

    @given(signed_values)
    def test_zigzag_roundtrip(self, value):
        mapped = varint.zigzag(value)
        assert mapped >= 0
        assert varint.unzigzag(mapped) == value

    @given(st.integers(min_value=0, max_value=(1 << 63) - 1))
    def test_unzigzag_roundtrip(self, mapped):
        assert varint.zigzag(varint.unzigzag(mapped)) == mapped


class TestZeroSuppressionProperties:
    @given(u32_values)
    def test_3bit_roundtrip(self, value):
        mask, payload = zero_suppression.encode_3bit(value)
        decoded, end = zero_suppression.decode_3bit(mask, payload)
        assert decoded == value
        assert end == len(payload)

    @given(u32_values)
    def test_2bit_roundtrip(self, value):
        mask, payload = zero_suppression.encode_2bit(value)
        decoded, end = zero_suppression.decode_2bit(mask, payload)
        assert decoded == value
        assert end == len(payload)

    @given(u32_values)
    def test_3bit_payload_is_minimal(self, value):
        mask, payload = zero_suppression.encode_3bit(value)
        assert len(payload) == zero_suppression.payload_size_3bit(value)
        assert mask + len(payload) == zero_suppression.WIDTH
        # Canonical: no leading zero byte survives suppression.
        if payload:
            assert payload[0] != 0

    @given(u32_values)
    def test_2bit_payload_is_minimal(self, value):
        mask, payload = zero_suppression.encode_2bit(value)
        assert len(payload) == zero_suppression.payload_size_2bit(value)
        assert 1 <= len(payload) <= zero_suppression.WIDTH
        # LSB is always stored; above one byte no leading zero survives.
        if len(payload) > 1:
            assert payload[0] != 0

    @given(u32_values, st.binary(min_size=0, max_size=4))
    def test_decode_at_offset(self, value, prefix):
        mask, payload = zero_suppression.encode_3bit(value)
        buf = prefix + payload
        decoded, end = zero_suppression.decode_3bit(mask, buf, len(prefix))
        assert decoded == value
        assert end == len(buf)
