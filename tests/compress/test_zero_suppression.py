"""Unit tests for leading zero-byte suppression."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compress import zero_suppression as zs
from repro.errors import CorruptBufferError, ValueOutOfRangeError

values_32bit = st.integers(min_value=0, max_value=zs.MAX_VALUE)


class TestLeadingZeroBytes:
    def test_all_widths(self):
        assert zs.leading_zero_bytes(0) == 4
        assert zs.leading_zero_bytes(0x01) == 3
        assert zs.leading_zero_bytes(0xFF) == 3
        assert zs.leading_zero_bytes(0x100) == 2
        assert zs.leading_zero_bytes(0xFFFF) == 2
        assert zs.leading_zero_bytes(0x10000) == 1
        assert zs.leading_zero_bytes(0x1000000) == 0
        assert zs.leading_zero_bytes(0xFFFFFFFF) == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueOutOfRangeError):
            zs.leading_zero_bytes(-1)
        with pytest.raises(ValueOutOfRangeError):
            zs.leading_zero_bytes(1 << 32)


class TestThreeBitVariant:
    def test_paper_example(self):
        # 0x00000090 -> mask 3 (binary 011), payload 0x90 (§2.3).
        assert zs.encode_3bit(0x90) == (3, b"\x90")

    def test_zero_stores_nothing(self):
        assert zs.encode_3bit(0) == (4, b"")

    def test_full_width(self):
        assert zs.encode_3bit(0xDEADBEEF) == (0, b"\xde\xad\xbe\xef")

    def test_decode(self):
        assert zs.decode_3bit(3, b"\x90") == (0x90, 1)
        assert zs.decode_3bit(4, b"") == (0, 0)
        assert zs.decode_3bit(0, b"\xde\xad\xbe\xef") == (0xDEADBEEF, 4)

    def test_decode_with_offset(self):
        buf = b"\x00\x00\x12\x34"
        assert zs.decode_3bit(2, buf, 2) == (0x1234, 4)

    def test_decode_truncated(self):
        with pytest.raises(CorruptBufferError):
            zs.decode_3bit(0, b"\x01\x02")

    def test_decode_bad_mask(self):
        with pytest.raises(CorruptBufferError):
            zs.decode_3bit(5, b"")

    @given(values_32bit)
    def test_roundtrip(self, value):
        mask, payload = zs.encode_3bit(value)
        assert zs.decode_3bit(mask, payload) == (value, len(payload))

    @given(values_32bit)
    def test_payload_size(self, value):
        mask, payload = zs.encode_3bit(value)
        assert len(payload) == zs.payload_size_3bit(value)
        assert mask + len(payload) == 4


class TestTwoBitVariant:
    def test_zero_stores_one_byte(self):
        assert zs.encode_2bit(0) == (3, b"\x00")

    def test_small_value(self):
        assert zs.encode_2bit(0x90) == (3, b"\x90")

    def test_full_width(self):
        assert zs.encode_2bit(0xDEADBEEF) == (0, b"\xde\xad\xbe\xef")

    def test_decode(self):
        assert zs.decode_2bit(3, b"\x00") == (0, 1)
        assert zs.decode_2bit(3, b"\x90") == (0x90, 1)

    def test_decode_bad_mask(self):
        with pytest.raises(CorruptBufferError):
            zs.decode_2bit(4, b"\x00")

    @given(values_32bit)
    def test_roundtrip(self, value):
        mask, payload = zs.encode_2bit(value)
        assert zs.decode_2bit(mask, payload) == (value, len(payload))

    @given(values_32bit)
    def test_payload_never_empty(self, value):
        __, payload = zs.encode_2bit(value)
        assert 1 <= len(payload) <= 4
        assert len(payload) == zs.payload_size_2bit(value)

    @given(values_32bit)
    def test_agrees_with_3bit_for_nonzero(self, value):
        # For non-zero values the two variants store identical payloads.
        if value != 0:
            assert zs.encode_2bit(value)[1] == zs.encode_3bit(value)[1]
