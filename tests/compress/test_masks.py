"""Unit tests for the compression-mask byte."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compress import masks
from repro.errors import CodecError


class TestPack:
    def test_paper_figure4(self):
        # delta_item=3 -> 2-bit mask 11; pcount=0 -> 3-bit mask 100;
        # only suffix pointer present -> 010 is left/right/suffix = 0,1,0?
        # Figure 4: left and right zero, suffix present -> bits 001.
        byte = masks.pack_node_mask(3, 4, False, False, True)
        assert byte == 0b11100001

    def test_all_zero(self):
        assert masks.pack_node_mask(0, 0, False, False, False) == 0

    def test_presence_bits(self):
        assert masks.pack_node_mask(0, 0, True, False, False) == 0b100
        assert masks.pack_node_mask(0, 0, False, True, False) == 0b010
        assert masks.pack_node_mask(0, 0, False, False, True) == 0b001

    def test_item_mask_range(self):
        with pytest.raises(CodecError):
            masks.pack_node_mask(4, 0, False, False, False)
        with pytest.raises(CodecError):
            masks.pack_node_mask(-1, 0, False, False, False)

    def test_pcount_mask_range(self):
        with pytest.raises(CodecError):
            masks.pack_node_mask(0, 5, False, False, False)


class TestUnpack:
    def test_roundtrip_example(self):
        decoded = masks.unpack_node_mask(0b11100001)
        assert decoded.item_mask == 3
        assert decoded.pcount_mask == 4
        assert not decoded.left_present
        assert not decoded.right_present
        assert decoded.suffix_present

    def test_rejects_corrupt_pcount_mask(self):
        # pcount mask 0b101 (=5) can never be produced by pack_node_mask.
        with pytest.raises(CodecError):
            masks.unpack_node_mask(0b00101000)

    def test_rejects_out_of_range_byte(self):
        with pytest.raises(CodecError):
            masks.unpack_node_mask(256)
        with pytest.raises(CodecError):
            masks.unpack_node_mask(-1)

    @given(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=4),
        st.booleans(),
        st.booleans(),
        st.booleans(),
    )
    def test_roundtrip(self, item_mask, pcount_mask, left, right, suffix):
        byte = masks.pack_node_mask(item_mask, pcount_mask, left, right, suffix)
        assert 0 <= byte <= 0xFF
        decoded = masks.unpack_node_mask(byte)
        assert decoded == masks.NodeMask(item_mask, pcount_mask, left, right, suffix)
