"""Unit tests for variable byte encoding (varint128)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compress import varint
from repro.errors import CorruptBufferError, ValueOutOfRangeError


class TestEncodedSize:
    def test_one_byte_values(self):
        assert varint.encoded_size(0) == 1
        assert varint.encoded_size(1) == 1
        assert varint.encoded_size(127) == 1

    def test_two_byte_values(self):
        assert varint.encoded_size(128) == 2
        assert varint.encoded_size(0x90) == 2
        assert varint.encoded_size(16383) == 2

    def test_boundaries(self):
        for n_bytes in range(1, 10):
            boundary = 1 << (7 * n_bytes)
            assert varint.encoded_size(boundary - 1) == n_bytes
            assert varint.encoded_size(boundary) == n_bytes + 1

    def test_max_value(self):
        assert varint.encoded_size(varint.MAX_VALUE) == 10


class TestEncodeDecode:
    def test_paper_example(self):
        # 0x90 = 144 encodes to 10010000 00000001 per §2.3.
        assert varint.encode(0x90) == bytes([0b10010000, 0b00000001])

    def test_zero(self):
        assert varint.encode(0) == b"\x00"
        assert varint.decode_from(b"\x00") == (0, 1)

    def test_single_byte_roundtrip(self):
        for value in range(128):
            assert varint.decode_from(varint.encode(value)) == (value, 1)

    def test_decode_with_offset(self):
        buf = b"\xff\xff" + varint.encode(300)
        value, end = varint.decode_from(buf, 2)
        assert value == 300
        assert end == len(buf)

    def test_encode_into_matches_encode(self):
        buf = bytearray(16)
        end = varint.encode_into(buf, 3, 123456)
        assert bytes(buf[3:end]) == varint.encode(123456)

    def test_encode_into_returns_next_offset(self):
        buf = bytearray(4)
        assert varint.encode_into(buf, 0, 5) == 1
        assert varint.encode_into(buf, 1, 200) == 3


class TestSkip:
    def test_skip_matches_decode(self):
        buf = varint.encode(7) + varint.encode(99999) + varint.encode(0)
        offset = varint.skip(buf, 0)
        assert offset == 1
        offset = varint.skip(buf, offset)
        assert offset == varint.decode_from(buf, 1)[1]

    def test_skip_truncated_raises(self):
        with pytest.raises(CorruptBufferError):
            varint.skip(b"\x80\x80", 0)


class TestErrors:
    def test_negative_rejected(self):
        with pytest.raises(ValueOutOfRangeError):
            varint.encode(-1)

    def test_too_large_rejected(self):
        with pytest.raises(ValueOutOfRangeError):
            varint.encode(varint.MAX_VALUE + 1)

    def test_non_int_rejected(self):
        with pytest.raises(ValueOutOfRangeError):
            varint.encode("12")  # type: ignore[arg-type]

    def test_truncated_buffer(self):
        with pytest.raises(CorruptBufferError):
            varint.decode_from(b"\x80")

    def test_empty_buffer(self):
        with pytest.raises(CorruptBufferError):
            varint.decode_from(b"")

    def test_overlong_encoding_rejected(self):
        # Eleven continuation bytes can never be a valid <=64-bit varint.
        with pytest.raises(CorruptBufferError):
            varint.decode_from(b"\x80" * 11 + b"\x01")


class TestProperties:
    @given(st.integers(min_value=0, max_value=varint.MAX_VALUE))
    def test_roundtrip(self, value):
        encoded = varint.encode(value)
        assert varint.decode_from(encoded) == (value, len(encoded))

    @given(st.integers(min_value=0, max_value=varint.MAX_VALUE))
    def test_encoded_size_matches_encode(self, value):
        assert varint.encoded_size(value) == len(varint.encode(value))

    @given(st.lists(st.integers(min_value=0, max_value=varint.MAX_VALUE), max_size=20))
    def test_stream_roundtrip(self, values):
        buf = b"".join(varint.encode(v) for v in values)
        offset = 0
        decoded = []
        for _ in values:
            value, offset = varint.decode_from(buf, offset)
            decoded.append(value)
        assert decoded == values
        assert offset == len(buf)

    @given(
        st.integers(min_value=0, max_value=varint.MAX_VALUE),
        st.integers(min_value=0, max_value=varint.MAX_VALUE),
    )
    def test_order_preserved_in_size(self, a, b):
        # Larger values never encode shorter.
        if a <= b:
            assert varint.encoded_size(a) <= varint.encoded_size(b)

    @given(st.integers(min_value=0, max_value=varint.MAX_VALUE))
    def test_last_byte_has_no_continuation_bit(self, value):
        encoded = varint.encode(value)
        assert not encoded[-1] & 0x80
        for byte in encoded[:-1]:
            assert byte & 0x80


def _triple_blob(triples):
    """Encode (delta_item, dpos, count) triples the way conversion does."""
    blob = bytearray()
    offsets = []
    for delta_item, dpos, count in triples:
        offsets.append(len(blob))
        blob += varint.encode(delta_item)
        blob += varint.encode(varint.zigzag(dpos))
        blob += varint.encode(count)
    return bytes(blob), offsets


class TestDecodeTriples:
    def test_matches_repeated_decode_from(self):
        triples = [(0, 0, 5), (2, -3, 1), (300, 1 << 20, 7)]
        blob, offsets = _triple_blob(triples)
        decoded = varint.decode_triples(blob, 0, len(blob))
        assert [(d, p, c) for __, d, p, c in decoded] == triples
        assert [local for local, *__ in decoded] == offsets

    def test_respects_subarray_window(self):
        blob, offsets = _triple_blob([(1, 1, 1), (2, -2, 2), (3, 3, 3)])
        # Decode only the middle triple by windowing [start, end).
        start = offsets[1]
        end = offsets[2]
        [(local, delta, dpos, count)] = varint.decode_triples(blob, start, end)
        assert (local, delta, dpos, count) == (0, 2, -2, 2)

    def test_empty_window(self):
        blob, __ = _triple_blob([(1, 1, 1)])
        assert varint.decode_triples(blob, 3, 3) == []

    def test_bounds_outside_buffer_raise(self):
        with pytest.raises(CorruptBufferError):
            varint.decode_triples(b"\x01", 0, 2)
        with pytest.raises(CorruptBufferError):
            varint.decode_triples(b"\x01\x01\x01", 2, 1)

    def test_truncated_triple_raises(self):
        blob, __ = _triple_blob([(5, -1, 9)])
        with pytest.raises(CorruptBufferError):
            varint.decode_triples(blob, 0, len(blob) - 1)

    def test_truncated_multibyte_varint_raises(self):
        # A continuation bit with no following byte inside the window.
        with pytest.raises(CorruptBufferError):
            varint.decode_triples(b"\x80", 0, 1)

    def test_overlong_varint_raises(self):
        blob = b"\x80" * varint.MAX_ENCODED_LENGTH + b"\x01\x00\x00"
        with pytest.raises(CorruptBufferError):
            varint.decode_triples(blob, 0, len(blob))

    def test_canonical_mode_rejects_padded_encoding(self):
        # 0x81 0x00 decodes to 1 but wastes a byte (trailing zero byte).
        blob = b"\x81\x00" + b"\x00\x00"
        assert varint.decode_triples(blob, 0, len(blob))[0][1] == 1
        with pytest.raises(CorruptBufferError):
            varint.decode_triples(blob, 0, len(blob), canonical=True)

    def test_accepts_memoryview_and_bytearray(self):
        blob, __ = _triple_blob([(7, 4, 2)])
        for wrapped in (bytearray(blob), memoryview(blob)):
            [(__, delta, dpos, count)] = varint.decode_triples(
                wrapped, 0, len(blob)
            )
            assert (delta, dpos, count) == (7, 4, 2)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 16),
                st.integers(min_value=-(1 << 16), max_value=1 << 16),
                st.integers(min_value=0, max_value=1 << 16),
            ),
            max_size=30,
        )
    )
    def test_property_matches_decode_from(self, triples):
        blob, offsets = _triple_blob(triples)
        decoded = varint.decode_triples(blob, 0, len(blob))
        expected = []
        offset = 0
        for local in offsets:
            delta, offset = varint.decode_from(blob, offset)
            dpos_raw, offset = varint.decode_from(blob, offset)
            count, offset = varint.decode_from(blob, offset)
            expected.append((local, delta, varint.unzigzag(dpos_raw), count))
        assert decoded == expected
        assert offset == len(blob)


class TestEncodeTriples:
    def test_matches_sequential_encode(self):
        triples = [(0, 0, 5), (2, -3, 1), (300, 1 << 20, 7)]
        blob, __ = _triple_blob(triples)
        buf = bytearray(len(blob))
        end = varint.encode_triples(buf, 0, triples)
        assert end == len(blob)
        assert bytes(buf) == blob

    def test_writes_at_offset(self):
        triples = [(1, -1, 2)]
        blob, __ = _triple_blob(triples)
        buf = bytearray(4 + len(blob))
        end = varint.encode_triples(buf, 4, triples)
        assert end == 4 + len(blob)
        assert bytes(buf[:4]) == b"\x00\x00\x00\x00"
        assert bytes(buf[4:]) == blob

    def test_empty_triples_write_nothing(self):
        buf = bytearray(3)
        assert varint.encode_triples(buf, 1, []) == 1
        assert bytes(buf) == b"\x00\x00\x00"

    def test_roundtrips_through_decode_triples(self):
        triples = [(9, 0, 1), (0, -(1 << 30), 1 << 40), (1, 1, 1)]
        size = sum(varint.triple_size(*t) for t in triples)
        buf = bytearray(size)
        assert varint.encode_triples(buf, 0, triples) == size
        decoded = varint.decode_triples(buf, 0, size)
        assert [(d, p, c) for __, d, p, c in decoded] == triples

    def test_out_of_range_values_raise(self):
        buf = bytearray(64)
        with pytest.raises(ValueOutOfRangeError):
            varint.encode_triples(buf, 0, [(-1, 0, 0)])
        with pytest.raises(ValueOutOfRangeError):
            varint.encode_triples(buf, 0, [(0, 0, varint.MAX_VALUE + 1)])

    def test_triple_size_matches_encoding(self):
        for triple in [(0, 0, 0), (5, -7, 300), (1 << 32, 1 << 31, 1)]:
            buf = bytearray(varint.triple_size(*triple))
            assert varint.encode_triples(buf, 0, [triple]) == len(buf)

    def test_triple_size_out_of_range_raises(self):
        with pytest.raises(ValueOutOfRangeError):
            varint.triple_size(varint.MAX_VALUE + 1, 0, 0)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 16),
                st.integers(min_value=-(1 << 16), max_value=1 << 16),
                st.integers(min_value=0, max_value=1 << 16),
            ),
            max_size=30,
        )
    )
    def test_property_identical_to_sequential(self, triples):
        blob, __ = _triple_blob(triples)
        size = sum(varint.triple_size(*t) for t in triples)
        assert size == len(blob)
        buf = bytearray(size)
        assert varint.encode_triples(buf, 0, triples) == size
        assert bytes(buf) == blob
