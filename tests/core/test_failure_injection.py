"""Failure injection: corrupted buffers and misuse must fail loudly."""

import pytest

from repro.compress import varint
from repro.core.cfp_array import CfpArray
from repro.core.node_codec import ChainNode, StandardNode, pointer_slot
from repro.core.ternary import TernaryCfpTree
from repro.errors import CodecError, CorruptBufferError, ReproError, TreeError


class TestCorruptStandardNodes:
    def test_truncated_item_payload(self):
        node = StandardNode(0x123456, 7)
        encoded = node.encode()[:2]  # cut inside the delta_item payload
        with pytest.raises(CorruptBufferError):
            StandardNode.decode(encoded, 0)

    def test_truncated_pointer(self):
        node = StandardNode(1, 0, suffix=pointer_slot(100))
        encoded = bytearray(node.encode()[:-2])
        # Pointer bytes are read blindly; decode succeeds but the slot is
        # short — the structure layer validates via range checks instead.
        decoded, __ = StandardNode.decode(bytes(encoded) + b"\x00\x00", 0)
        assert decoded.suffix is not None

    def test_invalid_pcount_mask(self):
        # Mask byte with pcount bits 0b101 (= 5) is never produced.
        encoded = bytearray(StandardNode(1, 0).encode())
        encoded[0] = (encoded[0] & 0b11000111) | (5 << 3)
        with pytest.raises(CodecError):
            StandardNode.decode(bytes(encoded), 0)


class TestCorruptChainNodes:
    def test_zero_length(self):
        encoded = bytearray(ChainNode([(1, 0), (2, 0)]).encode())
        encoded[1] = 0
        with pytest.raises(CorruptBufferError):
            ChainNode.decode(bytes(encoded), 0)

    def test_overlong_length(self):
        encoded = bytearray(ChainNode([(1, 0), (2, 0)]).encode())
        encoded[1] = 16
        with pytest.raises(CorruptBufferError):
            ChainNode.decode(bytes(encoded), 0)

    def test_truncated_escape_entry(self):
        encoded = ChainNode([(300, 5), (2, 0)]).encode()
        with pytest.raises(CorruptBufferError):
            ChainNode.decode(encoded[:3], 0)


class TestCorruptCfpArray:
    def _array(self):
        tree = TernaryCfpTree(3)
        tree.insert([1, 2, 3])
        tree.insert([1, 2])
        from repro.core.conversion import convert

        return convert(tree)

    def test_truncated_buffer(self):
        array = self._array()
        broken = CfpArray.__new__(CfpArray)
        broken.n_ranks = array.n_ranks
        broken.buffer = array.buffer[:-1]
        broken.starts = list(array.starts)
        broken.starts[-1] -= 1
        broken._node_count = None
        with pytest.raises(ReproError):
            list(broken.iter_subarray(array.n_ranks))

    def test_continuation_bit_corruption(self):
        array = self._array()
        # Setting the high bit of the last byte makes the final varint
        # run off the end of the buffer.
        array.buffer[-1] |= 0x80
        with pytest.raises(CorruptBufferError):
            list(array.iter_subarray(array.n_ranks))

    def test_bad_rank_rejected(self):
        array = self._array()
        with pytest.raises(TreeError):
            list(array.iter_subarray(0))
        with pytest.raises(TreeError):
            array.rank_support(99)


class TestVarintEdges:
    def test_all_continuation_bytes(self):
        with pytest.raises(CorruptBufferError):
            varint.decode_from(b"\xff" * 12)

    def test_offset_past_end(self):
        with pytest.raises(CorruptBufferError):
            varint.decode_from(b"\x01", 5)


class TestTreeMisuse:
    def test_insert_after_interleaved_config(self):
        # Valid inserts after promotions must not corrupt: stress by
        # alternating deep and shallow inserts and validating each step.
        tree = TernaryCfpTree(10)
        expected_nodes = 0
        sequences = [[5], [1, 5], [1, 5, 9], [2], [1, 2], [1, 5, 6, 7, 8]]
        for ranks in sequences:
            tree.insert(ranks)
            logical = tree.to_logical()
            assert logical.total_pcount() == tree.transaction_count
        expected_nodes = tree.node_count
        assert tree.to_logical().node_count == expected_nodes

    def test_rank_zero_rejected(self):
        tree = TernaryCfpTree(3)
        with pytest.raises(TreeError):
            tree.insert([0, 1])

    def test_large_counts_roundtrip(self):
        tree = TernaryCfpTree(2)
        tree.insert([1, 2], count=123_456_789)
        tree.insert([1], count=987_654_321)
        logical = tree.to_logical()
        assert logical.root.children[1].pcount == 987_654_321
        assert logical.root.children[1].children[2].pcount == 123_456_789
        from repro.core.conversion import convert

        array = convert(tree)
        assert array.rank_support(1) == 123_456_789 + 987_654_321
