"""Tests for the compressed physical CFP-tree: insert paths and invariants.

The key oracle: after any insert sequence, ``to_logical()`` must equal the
logical CFP-tree built from the same transactions — across every structural
feature (embedding, chains, splits, promotions) and configuration.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cfp_tree import CfpTree
from repro.core.ternary import TernaryCfpTree
from repro.errors import TreeError
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy, random_database


def snapshot(tree: CfpTree):
    """Canonical (path, pcount>0) form of a logical CFP-tree."""
    result = []

    def walk(node, path):
        for rank in sorted(node.children):
            child = node.children[rank]
            new_path = path + (rank,)
            if child.pcount:
                result.append((new_path, child.pcount))
            walk(child, new_path)

    walk(tree.root, ())
    return sorted(result)


def assert_equivalent(transactions, n_ranks, **options):
    physical = TernaryCfpTree(n_ranks, **options)
    logical = CfpTree(n_ranks)
    for ranks in transactions:
        physical.insert(ranks)
        logical.insert(ranks)
    assert snapshot(physical.to_logical()) == snapshot(logical)
    assert physical.node_count == logical.node_count
    assert physical.transaction_count == logical.transaction_count
    return physical


class TestBasicInserts:
    def test_empty_tree(self):
        tree = TernaryCfpTree(3)
        assert tree.node_count == 0
        assert list(tree.iter_events()) == []
        assert tree.single_path() == []

    def test_single_leaf_is_embedded(self):
        tree = TernaryCfpTree(3)
        tree.insert([2])
        stats = tree.physical_stats()
        assert stats.embedded_leaves == 1
        assert stats.chunks == 0
        # Only the 5-byte root slot is allocated.
        assert tree.memory_bytes == 5

    def test_leaf_pcount_accumulates_in_slot(self):
        tree = TernaryCfpTree(3)
        tree.insert([2])
        tree.insert([2], count=10)
        logical = tree.to_logical()
        assert logical.root.children[2].pcount == 11
        assert tree.physical_stats().embedded_leaves == 1

    def test_long_transaction_creates_chain(self):
        tree = TernaryCfpTree(6)
        tree.insert([1, 2, 3, 4, 5, 6])
        stats = tree.physical_stats()
        # The whole path, leaf included, fits one chain (the leaf is an
        # escape entry, cheaper than a suffix-slot embedded leaf).
        assert stats.chain_nodes == 1
        assert stats.chain_entries == 6
        assert stats.embedded_leaves == 0

    def test_two_node_path(self):
        tree = TernaryCfpTree(2)
        tree.insert([1, 2])
        stats = tree.physical_stats()
        assert stats.chain_nodes == 1
        assert stats.chain_entries == 2
        assert stats.standard_nodes == 0

    def test_single_leaf_under_branch_is_embedded(self):
        tree = TernaryCfpTree(4)
        tree.insert([1, 2])
        tree.insert([1, 3])
        # Rank 3 is a lone new leaf below existing structure: embedded in
        # a pointer slot (5 B vs 8 B for pointer + node).
        assert tree.physical_stats().embedded_leaves == 1
        tree.insert([1, 4])
        stats = tree.physical_stats()
        # Rank 4 embeds; rank 3 was promoted to hold it as a BST sibling.
        assert stats.embedded_leaves == 1
        assert stats.standard_nodes == 3

    def test_very_long_path_multiple_chains(self):
        ranks = list(range(1, 40))
        tree = TernaryCfpTree(40)
        tree.insert(ranks)
        stats = tree.physical_stats()
        assert stats.logical_nodes == 39
        assert stats.chain_nodes >= 2  # 38 interior / 15 per chain

    def test_non_ascending_rejected(self):
        tree = TernaryCfpTree(3)
        with pytest.raises(TreeError):
            tree.insert([2, 2])
        with pytest.raises(TreeError):
            tree.insert([3, 1])

    def test_config_validation(self):
        with pytest.raises(TreeError):
            TernaryCfpTree(-1)
        with pytest.raises(TreeError):
            TernaryCfpTree(2, max_chain_length=16)
        with pytest.raises(TreeError):
            TernaryCfpTree(2, max_chain_length=0)


class TestEmbeddedLeafPromotion:
    def test_leaf_gains_child(self):
        tree = TernaryCfpTree(3)
        tree.insert([1])
        tree.insert([1, 2])
        logical = tree.to_logical()
        assert logical.root.children[1].pcount == 1
        assert logical.root.children[1].children[2].pcount == 1

    def test_leaf_gains_sibling(self):
        tree = TernaryCfpTree(3)
        tree.insert([2])
        tree.insert([1])
        tree.insert([3])
        logical = tree.to_logical()
        assert set(logical.root.children) == {1, 2, 3}

    def test_unembeddable_delta_uses_standard_node(self):
        tree = TernaryCfpTree(300)
        tree.insert([300])  # delta 300 > 255
        stats = tree.physical_stats()
        assert stats.embedded_leaves == 0
        assert stats.standard_nodes == 1

    def test_pcount_overflow_promotes(self):
        tree = TernaryCfpTree(1)
        tree.insert([1], count=(1 << 24) - 1)
        assert tree.physical_stats().embedded_leaves == 1
        tree.insert([1])  # pcount now 2^24: no longer embeddable
        assert tree.physical_stats().embedded_leaves == 0
        assert tree.to_logical().root.children[1].pcount == 1 << 24

    def test_embedding_disabled(self):
        tree = TernaryCfpTree(2, enable_embedding=False)
        tree.insert([1])
        stats = tree.physical_stats()
        assert stats.embedded_leaves == 0
        assert stats.standard_nodes == 1


class TestChainSplits:
    def test_split_mid_chain_divergence(self):
        tree = TernaryCfpTree(8)
        tree.insert([1, 2, 3, 4, 5])
        tree.insert([1, 2, 6])  # diverges after entry for rank 2
        logical = tree.to_logical()
        node2 = logical.root.children[1].children[2]
        assert set(node2.children) == {3, 6}
        assert node2.children[3].children[4].children[5].pcount == 1
        assert node2.children[6].pcount == 1

    def test_split_at_first_entry_sibling(self):
        tree = TernaryCfpTree(8)
        tree.insert([2, 3, 4, 5])
        tree.insert([1])  # sibling of the chain's first element
        logical = tree.to_logical()
        assert set(logical.root.children) == {1, 2}

    def test_transaction_ends_mid_chain(self):
        tree = TernaryCfpTree(8)
        tree.insert([1, 2, 3, 4, 5])
        tree.insert([1, 2, 3])  # ends at an interior chain entry
        logical = tree.to_logical()
        node3 = logical.root.children[1].children[2].children[3]
        assert node3.pcount == 1

    def test_descend_past_chain_suffix(self):
        tree = TernaryCfpTree(10)
        tree.insert([1, 2, 3])
        tree.insert([1, 2, 3, 4, 5])  # continues below the old leaf
        logical = tree.to_logical()
        node3 = logical.root.children[1].children[2].children[3]
        assert node3.pcount == 1
        assert node3.children[4].children[5].pcount == 1

    def test_split_last_entry(self):
        tree = TernaryCfpTree(8)
        tree.insert([1, 2, 3, 4])
        tree.insert([1, 2, 3, 5])  # diverges at the final interior entry
        logical = tree.to_logical()
        node3 = logical.root.children[1].children[2].children[3]
        assert set(node3.children) == {4, 5}

    def test_chains_disabled(self):
        tree = TernaryCfpTree(6, enable_chains=False)
        tree.insert([1, 2, 3, 4, 5])
        stats = tree.physical_stats()
        assert stats.chain_nodes == 0
        assert stats.standard_nodes == 4
        assert stats.embedded_leaves == 1

    def test_short_max_chain_length(self):
        tree = TernaryCfpTree(20, max_chain_length=3)
        tree.insert(list(range(1, 12)))
        stats = tree.physical_stats()
        # 11 entries (leaf included) chunked bottom-up: 3+3+3 then 2.
        assert stats.chain_nodes == 4
        assert stats.chain_entries == 11
        assert stats.standard_nodes == 0
        assert stats.logical_nodes == 11


class TestSinglePath:
    def test_path_with_counts(self):
        tree = TernaryCfpTree(4)
        tree.insert([1, 2, 3])
        tree.insert([1, 2])
        tree.insert([1])
        assert tree.single_path() == [(1, 3), (2, 2), (3, 1)]

    def test_branching_returns_none(self):
        tree = TernaryCfpTree(4)
        tree.insert([1, 2])
        tree.insert([1, 3])
        assert tree.single_path() is None

    def test_branch_at_root_returns_none(self):
        tree = TernaryCfpTree(4)
        tree.insert([1])
        tree.insert([2])
        assert tree.single_path() is None

    def test_chain_path(self):
        tree = TernaryCfpTree(8)
        tree.insert([1, 2, 3, 4, 5, 6])
        path = tree.single_path()
        assert path == [(r, 1) for r in range(1, 7)]


class TestMemoryAccounting:
    def test_seven_byte_typical_node(self):
        # The >90% case of §3.3: small delta, pcount 0, suffix only.
        tree = TernaryCfpTree(2, enable_chains=False)
        tree.insert([1, 2])
        # standard node (7 bytes) + root slot (5) = 12; leaf embedded.
        assert tree.memory_bytes == 12

    def test_average_node_size_below_baseline(self):
        db = random_database(3, n_transactions=200, n_items=30, max_length=12)
        table, transactions = prepare_transactions(db, 2)
        tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
        assert 0 < tree.average_node_size() < 28

    def test_empty_average(self):
        assert TernaryCfpTree(1).average_node_size() == 0.0


class TestEquivalence:
    def test_random_databases_all_configs(self):
        for seed in range(6):
            db = random_database(seed, n_transactions=80, n_items=15, max_length=10)
            table, transactions = prepare_transactions(db, 2)
            for options in (
                {},
                {"enable_chains": False},
                {"enable_embedding": False},
                {"enable_chains": False, "enable_embedding": False},
                {"max_chain_length": 2},
                {"max_chain_length": 4},
            ):
                assert_equivalent(transactions, len(table), **options)

    @settings(max_examples=60, deadline=None)
    @given(db_strategy)
    def test_property_equivalence(self, database):
        table, transactions = prepare_transactions(database, 1)
        assert_equivalent(transactions, len(table))

    @settings(max_examples=30, deadline=None)
    @given(db_strategy, st.integers(min_value=1, max_value=4))
    def test_property_equivalence_chain_lengths(self, database, max_chain):
        table, transactions = prepare_transactions(database, 1)
        assert_equivalent(transactions, len(table), max_chain_length=max_chain)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=30),
                min_size=1,
                max_size=20,
                unique=True,
            ).map(sorted),
            min_size=1,
            max_size=15,
        )
    )
    def test_property_long_transactions(self, transactions):
        assert_equivalent(transactions, 30)

    def test_duplicate_transaction_heavy(self):
        transactions = [[1, 2, 3]] * 50 + [[1, 2]] * 30 + [[2, 3]] * 20
        tree = assert_equivalent(transactions, 3)
        assert tree.transaction_count == 100

    def test_interleaved_structure_churn(self):
        # Exercises promote -> split -> extend -> bump sequences heavily.
        transactions = [
            [5],
            [5, 6],
            [1, 5, 6],
            [5, 6, 7, 8, 9, 10],
            [5, 6, 7],
            [5, 8],
            [2],
            [1, 2, 3, 4, 5, 6, 7, 8],
            [1, 2, 3, 4],
            [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12],
            [3],
            [1, 2, 4, 6, 8, 10, 12],
            [5, 6],
            [5, 7],
        ]
        assert_equivalent(transactions, 12)
        assert_equivalent(transactions, 12, max_chain_length=3)


class TestInsertBatch:
    """The sorted-insert fast path: same logical tree, fewer descents."""

    def _batch_equivalent(self, transactions, n_ranks, **options):
        batched = TernaryCfpTree(n_ranks, **options)
        batched.insert_batch(transactions)
        loop = TernaryCfpTree(n_ranks, **options)
        for ranks in transactions:
            loop.insert(ranks)
        assert snapshot(batched.to_logical()) == snapshot(loop.to_logical())
        assert batched.transaction_count == loop.transaction_count
        return batched

    def test_no_shared_prefix_batch(self):
        # Regression: every transaction starts at a different rank, so the
        # trail never helps — the batch must degrade to plain inserts, not
        # resume below a node from an unrelated subtree.
        transactions = [[5, 6], [3, 4], [1, 2], [7, 8], [2, 9]]
        tree = self._batch_equivalent(transactions, 9)
        assert tree.prefix_skip_hits == 0

    def test_shared_prefixes_register_skips(self):
        transactions = [[1, 2, 3, 4], [1, 2, 3, 5], [1, 2, 3, 6], [1, 2, 7]]
        tree = self._batch_equivalent(transactions, 7)
        assert tree.prefix_skip_hits > 0
        assert tree.prefix_skip_levels >= tree.prefix_skip_hits

    def test_unsorted_input_is_sorted_first(self):
        transactions = [[3, 4], [1, 2], [1, 2, 3], [2, 4], [1]]
        self._batch_equivalent(transactions, 4)

    def test_duplicates_bump_counts(self):
        tree = self._batch_equivalent([[1, 2]] * 5 + [[1, 2, 3]] * 3, 3)
        assert tree.transaction_count == 8

    def test_empty_transactions_skipped(self):
        tree = TernaryCfpTree(3)
        assert tree.insert_batch([[], [1, 2], [], [2]]) == 2
        assert tree.transaction_count == 2

    def test_invalid_transaction_rejected(self):
        tree = TernaryCfpTree(3)
        with pytest.raises(TreeError):
            tree.insert_batch([[1, 2], [2, 1]])

    def test_batch_then_single_inserts_compose(self):
        transactions = [[1, 2, 3], [1, 2], [2, 3], [1, 3]]
        tree = TernaryCfpTree(3)
        tree.insert_batch(transactions[:2])
        for ranks in transactions[2:]:
            tree.insert(ranks)
        loop = TernaryCfpTree(3)
        for ranks in transactions:
            loop.insert(ranks)
        assert snapshot(tree.to_logical()) == snapshot(loop.to_logical())

    def test_all_configs_random(self):
        for seed in range(4):
            db = random_database(seed, n_transactions=80, n_items=15, max_length=10)
            table, transactions = prepare_transactions(db, 2)
            for options in (
                {},
                {"enable_chains": False},
                {"enable_embedding": False},
                {"max_chain_length": 2},
            ):
                self._batch_equivalent(transactions, len(table), **options)

    @settings(max_examples=40, deadline=None)
    @given(db_strategy)
    def test_property_batch_equivalence(self, database):
        table, transactions = prepare_transactions(database, 1)
        self._batch_equivalent(transactions, len(table))


class TestIterNodesWithParent:
    def test_parent_ranks(self):
        tree = TernaryCfpTree(4)
        tree.insert([1, 3])
        tree.insert([1, 4])
        tree.insert([2])
        triples = list(tree.iter_nodes_with_parent())
        assert (1, 0, 0) in triples
        assert (3, 1, 1) in triples
        assert (4, 1, 1) in triples
        assert (2, 1, 0) in triples
        assert len(triples) == 4

    @given(db_strategy)
    def test_deltas_always_positive(self, database):
        table, transactions = prepare_transactions(database, 1)
        tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
        for rank, __, parent_rank in tree.iter_nodes_with_parent():
            assert rank - parent_rank >= 1
