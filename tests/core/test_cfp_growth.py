"""Correctness tests for the CFP-growth miner."""

from hypothesis import given, settings

from repro.algorithms.bruteforce import brute_force
from repro.core.cfp_growth import cfp_growth, mine_rank_transactions
from repro.fptree.growth import CountCollector, ListCollector, fp_growth
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy, normalize, random_database


class TestSmallCases:
    def test_empty_database(self):
        assert cfp_growth([], 1) == []

    def test_single_transaction(self):
        assert normalize(cfp_growth([[1, 2]], 1)) == {
            frozenset([1]): 1,
            frozenset([2]): 1,
            frozenset([1, 2]): 1,
        }

    def test_paper_example(self, small_db):
        assert normalize(cfp_growth(small_db, 2)) == normalize(
            brute_force(small_db, 2)
        )

    def test_single_path_top_level(self):
        db = [[1], [1, 2], [1, 2, 3]]
        assert normalize(cfp_growth(db, 1)) == normalize(brute_force(db, 1))

    def test_string_items(self):
        db = [["beer", "chips"], ["beer"], ["chips", "beer", "salsa"]]
        results = normalize(cfp_growth(db, 2))
        assert results[frozenset(["beer", "chips"])] == 2

    def test_high_support_prunes_everything(self):
        assert cfp_growth([[1, 2], [3, 4]], 5) == []


class TestAgainstReferences:
    def test_matches_fp_growth_random(self):
        for seed in range(10):
            db = random_database(seed, n_transactions=70, n_items=14, max_length=9)
            for min_support in (2, 3, 6):
                assert normalize(cfp_growth(db, min_support)) == normalize(
                    fp_growth(db, min_support)
                ), f"seed={seed} min_support={min_support}"

    def test_matches_brute_force_dense(self):
        # Dense database: long shared transactions stress the single-path
        # shortcut and conditional recursion.
        db = [[1, 2, 3, 4, 5]] * 4 + [[1, 2, 3], [2, 3, 4, 5], [1, 4, 5], [2]]
        for min_support in (1, 2, 4):
            assert normalize(cfp_growth(db, min_support)) == normalize(
                brute_force(db, min_support)
            )

    @settings(max_examples=40, deadline=None)
    @given(db_strategy)
    def test_property_equivalence(self, database):
        assert normalize(cfp_growth(database, 2)) == normalize(
            fp_growth(database, 2)
        )

    @settings(max_examples=20, deadline=None)
    @given(db_strategy)
    def test_property_supports_exact(self, database):
        for itemset, support in cfp_growth(database, 2):
            actual = sum(1 for t in database if set(itemset) <= set(t))
            assert actual == support


class TestCollectors:
    def test_count_collector_matches_list(self):
        db = random_database(42, n_transactions=60, n_items=10, max_length=8)
        table, transactions = prepare_transactions(db, 3)
        listed = mine_rank_transactions(transactions, len(table), 3, ListCollector())
        counted = mine_rank_transactions(
            transactions, len(table), 3, CountCollector()
        )
        assert counted.count == len(listed.itemsets)

    def test_itemsets_unique(self):
        db = random_database(7, n_transactions=50, n_items=10, max_length=7)
        results = cfp_growth(db, 2)
        keys = [frozenset(itemset) for itemset, __ in results]
        assert len(keys) == len(set(keys))
