"""Tests for the byte-level structural validator."""

import pytest
from hypothesis import given, settings

from repro.core.validate import ValidationError, validate_tree
from repro.core.ternary import TernaryCfpTree
from repro.memman.pointers import POINTER_SIZE
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy, random_database


def build(seed=2, **options):
    db = random_database(seed, n_transactions=80, n_items=14, max_length=9)
    table, transactions = prepare_transactions(db, 2)
    return TernaryCfpTree.from_rank_transactions(transactions, len(table), **options)


class TestIntactTrees:
    def test_empty(self):
        report = validate_tree(TernaryCfpTree(3))
        assert report.ok
        assert report.logical_nodes == 0

    def test_random_tree(self):
        tree = build()
        report = validate_tree(tree)
        assert report.ok
        assert report.logical_nodes == tree.node_count
        assert report.pcount_total == tree.transaction_count
        assert (
            report.standard_nodes + report.embedded_leaves > 0
        )

    def test_all_configs(self):
        for options in (
            {},
            {"enable_chains": False},
            {"enable_embedding": False},
            {"max_chain_length": 3},
        ):
            report = validate_tree(build(**options))
            assert report.ok, options

    def test_degenerate_sibling_chain(self):
        # Ranks inserted in order degenerate the BST; must not recurse out.
        tree = TernaryCfpTree(1500)
        for rank in range(1, 1501):
            tree.insert([rank])
        assert validate_tree(tree).ok

    @settings(max_examples=30, deadline=None)
    @given(db_strategy)
    def test_property_all_trees_valid(self, database):
        table, transactions = prepare_transactions(database, 1)
        tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
        report = validate_tree(tree)
        assert report.ok
        assert report.logical_nodes == tree.node_count


class TestCorruptionDetected:
    def _corrupt(self, tree, mutate):
        mutate(tree)
        with pytest.raises(ValidationError):
            validate_tree(tree)

    def test_counter_mismatch(self):
        tree = build()
        self._corrupt(tree, lambda t: setattr(t, "logical_node_count", 1))

    def test_transaction_count_mismatch(self):
        tree = build()
        self._corrupt(tree, lambda t: setattr(t, "transaction_count", 0))

    def test_dangling_root_pointer(self):
        tree = build()

        def mutate(t):
            # Point the root slot past the used region.
            bogus = (t.arena._next_free + 1000).to_bytes(POINTER_SIZE, "big")
            t.arena.buf[t._root_slot : t._root_slot + POINTER_SIZE] = bogus

        self._corrupt(tree, mutate)

    def test_smashed_node_bytes(self):
        tree = build()

        def mutate(t):
            from repro.core.node_codec import slot_address, slot_is_embedded

            raw = bytes(
                t.arena.buf[t._root_slot : t._root_slot + POINTER_SIZE]
            )
            if slot_is_embedded(raw):
                pytest.skip("root is an embedded leaf")
            addr = slot_address(raw)
            # Corrupt the mask byte with an invalid pcount mask (0b110).
            t.arena.buf[addr] = (t.arena.buf[addr] & 0b11000111) | (6 << 3)

        self._corrupt(tree, mutate)

    def test_non_strict_collects_issues(self):
        tree = build()
        tree.logical_node_count += 5
        report = validate_tree(tree, strict=False)
        assert not report.ok
        assert any("mismatch" in issue for issue in report.issues)

    def test_restored_checkpoint_validates(self, tmp_path):
        from repro.storage import load_cfp_tree, save_cfp_tree

        tree = build()
        path = tmp_path / "t.cfpt"
        save_cfp_tree(tree, path)
        assert validate_tree(load_cfp_tree(path)).ok
