"""Byte-identity and lifecycle tests for the parallel sharded build.

The central contract of :mod:`repro.core.build_parallel` mirrors the
parallel miner's: for ANY worker count and ANY transaction order, the
produced CFP-array is byte-for-byte the serial build+convert's. These
tests exercise that across worker counts, shuffled transaction orders,
synthetic datasets, and hypothesis-generated databases, plus the
leading-rank partitioner and the shared-memory transaction block.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.build_parallel import (
    build_tree_parallel,
    partition_leading_ranks,
    publish_transactions,
)
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.datasets.synthetic import make_retail
from repro.errors import TreeError
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy, paper_example_database, random_database

JOB_COUNTS = [1, 2, 4]


def _prepared(database, min_support):
    table, transactions = prepare_transactions(database, min_support)
    return transactions, len(table)


def _serial_array(transactions, n_ranks):
    return convert(TernaryCfpTree.from_rank_transactions(transactions, n_ranks))


def _assert_identical(actual, expected):
    assert bytes(actual.buffer) == bytes(expected.buffer)
    assert actual.starts == expected.starts
    assert actual.node_count == expected.node_count


class TestSerialParallelIdentity:
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_paper_example(self, jobs):
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        expected = _serial_array(transactions, n_ranks)
        _assert_identical(build_tree_parallel(transactions, n_ranks, jobs=jobs), expected)

    @pytest.mark.parametrize("jobs", [2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_databases(self, jobs, seed):
        database = random_database(seed, n_transactions=120)
        transactions, n_ranks = _prepared(database, 2)
        expected = _serial_array(transactions, n_ranks)
        _assert_identical(build_tree_parallel(transactions, n_ranks, jobs=jobs), expected)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_retail_synthetic(self, jobs):
        database = make_retail(n_transactions=300, n_items=120, seed=5)
        transactions, n_ranks = _prepared(database, 6)
        expected = _serial_array(transactions, n_ranks)
        _assert_identical(build_tree_parallel(transactions, n_ranks, jobs=jobs), expected)

    def test_shuffled_transaction_order_is_invisible(self):
        # The CFP-array is insertion-order invariant, so shuffling the
        # transaction list must not change a single byte — serial or sharded.
        database = random_database(11, n_transactions=100)
        transactions, n_ranks = _prepared(database, 2)
        expected = _serial_array(transactions, n_ranks)
        rng = random.Random(42)
        for jobs in (1, 2, 4):
            shuffled = list(transactions)
            rng.shuffle(shuffled)
            _assert_identical(
                build_tree_parallel(shuffled, n_ranks, jobs=jobs), expected
            )

    @settings(max_examples=15, deadline=None)
    @given(database=db_strategy, jobs=st.sampled_from([1, 2, 4]))
    def test_property_identity(self, database, jobs):
        transactions, n_ranks = _prepared(database, 2)
        expected = _serial_array(transactions, n_ranks)
        _assert_identical(
            build_tree_parallel(transactions, n_ranks, jobs=jobs), expected
        )

    def test_empty_transactions_are_dropped(self):
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        expected = _serial_array(transactions, n_ranks)
        padded = [[]] + list(transactions) + [[]]
        _assert_identical(build_tree_parallel(padded, n_ranks, jobs=2), expected)

    def test_single_leading_rank_runs_serial(self):
        # Every transaction starts at rank 1: nothing to shard, and the
        # serial path must still produce the right array.
        transactions = [[1, 2, 3], [1, 2], [1, 3], [1]]
        expected = _serial_array(transactions, 3)
        _assert_identical(build_tree_parallel(transactions, 3, jobs=4), expected)

    def test_invalid_transaction_rejected(self):
        with pytest.raises(TreeError):
            build_tree_parallel([[2, 1]], 2, jobs=2)


class TestPartitioner:
    def test_sets_are_disjoint_and_cover(self):
        weights = {r: 100 - r for r in range(1, 30)}
        owned = partition_leading_ranks(weights, 4)
        assert len(owned) == 4
        union: set[int] = set()
        for ranks in owned:
            assert not (union & ranks)
            union |= ranks
        assert union == set(weights)

    def test_lpt_balances_loads(self):
        # One dominant rank plus a tail: LPT must not stack the tail on
        # the dominant rank's worker.
        weights = {1: 1000, 2: 300, 3: 300, 4: 300, 5: 100}
        owned = partition_leading_ranks(weights, 2)
        loads = sorted(sum(weights[r] for r in ranks) for ranks in owned)
        assert loads == [1000, 1000]

    def test_deterministic(self):
        weights = {r: (r * 7919) % 100 for r in range(1, 50)}
        assert partition_leading_ranks(weights, 4) == partition_leading_ranks(
            weights, 4
        )

    def test_more_workers_than_ranks_leaves_empty_sets(self):
        owned = partition_leading_ranks({1: 5, 2: 3}, 4)
        assert len(owned) == 4
        assert {r for ranks in owned for r in ranks} == {1, 2}


class TestTransactionBlock:
    def test_publish_computes_leading_rank_weights(self):
        transactions = [[1, 2, 3], [1, 5], [2, 4], [3]]
        segment, weights = publish_transactions(transactions, 5)
        try:
            assert weights == {1: 5, 2: 2, 3: 1}
        finally:
            segment.close()
            segment.unlink()

    def test_segment_unlinked_after_build(self):
        import pathlib

        shm = pathlib.Path("/dev/shm")
        if not shm.is_dir():  # pragma: no cover - non-POSIX-shm platform
            pytest.skip("no /dev/shm to observe")
        before = {p.name for p in shm.glob("psm_*")}
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = build_tree_parallel(transactions, n_ranks, jobs=2)
        assert array.node_count > 0
        leaked = {p.name for p in shm.glob("psm_*")} - before
        assert leaked == set()
