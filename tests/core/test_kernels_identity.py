"""Identity suites: columnar kernels vs the retained per-node reference.

The columnar mine path (:mod:`repro.core.kernels` driven by
``cfp_growth._conditional_struct``) replaced a per-node implementation
that is retained verbatim as ``cfp_growth._conditional_tree_reference``.
The kernels' contract is that they change how fast the answer is
computed, never the answer — so these suites hold them to the reference
*bit for bit*: single-path verdicts must match the tree's
``single_path()``, and branching conditionals must encode to the exact
bytes ``convert(reference_tree)`` produces.
"""

from __future__ import annotations

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.cfp_growth import (
    _conditional_struct,
    _conditional_tree_reference,
    mine_array,
    mine_rank_transactions,
)
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.fptree.growth import ListCollector, mine_ranks
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy, random_database

#: Strictly-ascending rank paths, the shape ``filter_aggregate`` emits.
path_strategy = st.lists(
    st.integers(min_value=1, max_value=12), min_size=1, max_size=6
).map(lambda ranks: tuple(sorted(set(ranks))))

#: A conditional's worth of aggregated paths with their total counts.
aggregated_strategy = st.dictionaries(
    path_strategy, st.integers(min_value=1, max_value=50), min_size=1, max_size=12
)


def build_array(database, min_support):
    table, transactions = prepare_transactions(database, min_support)
    n_ranks = len(table)
    tree = TernaryCfpTree.from_rank_transactions(transactions, n_ranks)
    return convert(tree), n_ranks


def assert_identical_arrays(got, want):
    assert bytes(got.buffer) == bytes(want.buffer)
    assert got.starts == want.starts
    assert got.node_count == want.node_count


def mine_reference(array, min_support):
    """Serial CFP-growth through the per-node reference conditionals.

    Mirrors ``mine_rank``'s traversal exactly but builds every
    conditional through ``_conditional_tree_reference`` — the pre-kernel
    implementation — so its emission order and output pin the columnar
    path's. Shared with the chaos identity suite.
    """
    collector = ListCollector()

    def mine(arr, min_support, suffix):
        for rank in arr.active_ranks_descending():
            support = arr.rank_support(rank)
            if support < min_support:
                continue
            itemset = (rank,) + suffix
            collector.emit(itemset, support)
            ref_tree = _conditional_tree_reference(arr, rank, min_support)
            if ref_tree is None:
                continue
            chain = ref_tree.single_path()
            if chain is not None:
                collector.emit_path_subsets(chain, itemset)
            else:
                mine(convert(ref_tree), min_support, itemset)

    mine(array, min_support, ())
    return collector


class TestConditionalStructIdentity:
    """``_conditional_struct`` == ``_conditional_tree_reference``, bitwise."""

    def check_array(self, array, min_support, depth=0):
        for rank in array.active_ranks_descending():
            if array.rank_support(rank) < min_support:
                continue
            chain, cond = _conditional_struct(array, rank, min_support)
            ref_tree = _conditional_tree_reference(array, rank, min_support)
            if ref_tree is None:
                assert chain is None and cond is None
                continue
            ref_chain = ref_tree.single_path()
            if ref_chain is not None:
                assert cond is None
                assert chain == ref_chain
            else:
                assert chain is None
                assert_identical_arrays(cond, convert(ref_tree))
                if depth < 1:  # one recursion level: conditional conditionals
                    self.check_array(cond, min_support, depth + 1)

    @given(database=db_strategy, min_support=st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_every_rank_identical(self, database, min_support):
        array, __ = build_array(database, min_support)
        self.check_array(array, min_support)

    def test_identical_on_skewed_databases(self):
        for seed in range(5):
            array, __ = build_array(random_database(seed), 2)
            self.check_array(array, 2)

    def test_cache_budget_does_not_change_results(self):
        # The persistent prefix-path memo (cache-enabled arrays) and the
        # per-call memo must resolve the same paths.
        array, __ = build_array(random_database(7), 2)
        cached, __ = build_array(random_database(7), 2)
        cached.set_cache_budget(1 << 16)
        for rank in array.active_ranks_descending():
            assert cached.prefix_paths(rank) == array.prefix_paths(rank)
            chain, cond = _conditional_struct(cached, rank, 2)
            want_chain, want_cond = _conditional_struct(array, rank, 2)
            assert chain == want_chain
            assert (cond is None) == (want_cond is None)
            if cond is not None:
                assert_identical_arrays(cond, want_cond)

    def test_prefix_paths_match_path_ranks(self):
        # The memoized bulk walk agrees with the node-at-a-time backward
        # traversal it replaced.
        array, __ = build_array(random_database(3), 2)
        for rank in array.active_ranks_descending():
            paths = array.prefix_paths(rank)
            rows = array.decode_subarray(rank)
            assert len(paths) == len(rows)
            for (path, count), (local, *__rest) in zip(paths, rows):
                assert list(path) == array.path_ranks(rank, local)


class TestMinedOutputIdentity:
    """End-to-end: the columnar miner == reference miners, itemset for itemset."""

    @given(database=db_strategy, min_support=st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_identical_to_per_node_reference_miner(self, database, min_support):
        table, transactions = prepare_transactions(database, min_support)
        n_ranks = len(table)
        array = convert(TernaryCfpTree.from_rank_transactions(transactions, n_ranks))
        got = ListCollector()
        mine_array(array, min_support, got)
        want = mine_reference(array, min_support)
        assert got.itemsets == want.itemsets

    @given(database=db_strategy, min_support=st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_equivalent_to_fp_growth(self, database, min_support):
        table, transactions = prepare_transactions(database, min_support)
        got = mine_rank_transactions(transactions, len(table), min_support)
        want = mine_ranks(list(transactions), len(table), min_support)
        assert sorted(got.itemsets) == sorted(want.itemsets)


class TestKernelUnits:
    """Each kernel against its naive per-node definition."""

    @given(database=db_strategy)
    @settings(max_examples=30, deadline=None)
    def test_conditional_counts_matches_dict_accumulation(self, database):
        array, n_ranks = build_array(database, 1)
        for rank in array.active_ranks_descending():
            paths = array.prefix_paths(rank)
            naive: dict[int, int] = defaultdict(int)
            for ranks, count in paths:
                for path_rank in ranks:
                    naive[path_rank] += count
            counts = kernels.conditional_counts(paths, n_ranks)
            assert len(counts) == n_ranks + 1
            for path_rank in range(1, n_ranks + 1):
                assert counts[path_rank] == naive.get(path_rank, 0)

    @given(database=db_strategy, min_support=st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_filter_aggregate_matches_per_path_filtering(self, database, min_support):
        array, n_ranks = build_array(database, 1)
        for rank in array.active_ranks_descending():
            paths = array.prefix_paths(rank)
            counts = kernels.conditional_counts(paths, n_ranks)
            frequent = {r for r, c in enumerate(counts) if c >= min_support}
            naive: dict[tuple[int, ...], int] = defaultdict(int)
            for ranks, count in paths:
                filtered = tuple(r for r in ranks if r in frequent)
                if filtered:
                    naive[filtered] += count
            assert kernels.filter_aggregate(paths, counts, min_support) == dict(naive)

    @given(aggregated=aggregated_strategy)
    @settings(max_examples=60, deadline=None)
    def test_single_path_merge_matches_tree(self, aggregated):
        tree = TernaryCfpTree(12)
        for path, count in aggregated.items():
            tree.insert(list(path), count)
        assert kernels.single_path_merge(aggregated) == tree.single_path()

    @given(aggregated=aggregated_strategy)
    @settings(max_examples=60, deadline=None)
    def test_build_conditional_array_matches_convert(self, aggregated):
        tree = TernaryCfpTree(12)
        for path, count in aggregated.items():
            tree.insert(list(path), count)
        got = kernels.build_conditional_array(sorted(aggregated.items()), 12)
        assert_identical_arrays(got, convert(tree))

    def test_backend_reports_a_known_kernel(self):
        assert kernels.backend() in {"python", "numpy"}
