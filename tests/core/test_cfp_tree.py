"""Unit tests for the logical CFP-tree (§3.2 semantics)."""

import pytest
from hypothesis import given

from repro.core.cfp_tree import CfpTree
from repro.errors import TreeError
from repro.fptree import FPTree
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy


def build_pair(database, min_support=2):
    table, transactions = prepare_transactions(database, min_support)
    fp = FPTree.from_rank_transactions(transactions, len(table))
    cfp = CfpTree.from_rank_transactions(transactions, len(table))
    return fp, cfp


class TestInsert:
    def test_empty_transaction_ignored(self):
        tree = CfpTree(3)
        tree.insert([])
        assert tree.node_count == 0
        assert tree.transaction_count == 0

    def test_only_final_pcount_bumped(self):
        tree = CfpTree(3)
        tree.insert([1, 2, 3])
        node1 = tree.root.children[1]
        node2 = node1.children[2]
        node3 = node2.children[3]
        assert (node1.pcount, node2.pcount, node3.pcount) == (0, 0, 1)

    def test_delta_items(self):
        tree = CfpTree(5)
        tree.insert([2, 5])
        node2 = tree.root.children[2]
        assert node2.delta_item == 2  # child of root: delta equals rank
        assert node2.children[5].delta_item == 3

    def test_repeated_prefix_accumulates(self):
        tree = CfpTree(2)
        tree.insert([1, 2])
        tree.insert([1, 2], count=4)
        assert tree.root.children[1].children[2].pcount == 5
        assert tree.node_count == 2

    def test_negative_ranks_rejected(self):
        with pytest.raises(TreeError):
            CfpTree(-1)


class TestCountReconstruction:
    def test_count_is_subtree_pcount_sum(self):
        tree = CfpTree(4)
        tree.insert([1])
        tree.insert([1, 2])
        tree.insert([1, 2, 3])
        tree.insert([1, 4])
        node1 = tree.root.children[1]
        assert node1.count() == 4
        assert node1.children[2].count() == 2

    def test_total_pcount_equals_transactions(self):
        tree = CfpTree(3)
        for ranks in ([1], [1, 2], [2, 3], [1, 2, 3]):
            tree.insert(ranks)
        assert tree.total_pcount() == tree.transaction_count == 4

    @given(db_strategy)
    def test_counts_match_fp_tree(self, database):
        fp, cfp = build_pair(database)
        # Walk both trees in lockstep comparing counts.
        stack = [(fp.root, cfp.root)]
        while stack:
            fp_node, cfp_node = stack.pop()
            assert set(fp_node.children) == set(cfp_node.children)
            for rank, fp_child in fp_node.children.items():
                cfp_child = cfp_node.children[rank]
                assert cfp_child.count() == fp_child.count
                stack.append((fp_child, cfp_child))


class TestFpTreeRoundtrip:
    @given(db_strategy)
    def test_from_fp_tree_matches_direct_build(self, database):
        table, transactions = prepare_transactions(database, 2)
        fp = FPTree.from_rank_transactions(transactions, len(table))
        direct = CfpTree.from_rank_transactions(transactions, len(table))
        derived = CfpTree.from_fp_tree(fp)
        assert _snapshot(direct) == _snapshot(derived)

    @given(db_strategy)
    def test_to_fp_tree_roundtrip(self, database):
        table, transactions = prepare_transactions(database, 2)
        fp = FPTree.from_rank_transactions(transactions, len(table))
        rebuilt = CfpTree.from_fp_tree(fp).to_fp_tree()
        assert rebuilt.node_count == fp.node_count
        for rank in range(1, len(table) + 1):
            assert rebuilt.rank_count(rank) == fp.rank_count(rank)
            assert sorted(
                (tuple(p), c) for p, c in rebuilt.prefix_paths(rank)
            ) == sorted((tuple(p), c) for p, c in fp.prefix_paths(rank))


def _snapshot(tree: CfpTree):
    """Canonical structural form: set of (path, pcount) for pcount > 0."""
    result = []

    def walk(node, path):
        for rank in sorted(node.children):
            child = node.children[rank]
            new_path = path + (rank,)
            if child.pcount:
                result.append((new_path, child.pcount))
            walk(child, new_path)

    walk(tree.root, ())
    return sorted(result)
