"""Determinism and lifecycle tests for the parallel mine phase.

The central contract of :mod:`repro.core.parallel` is byte-identity: for
ANY worker count and ANY task scheduling order, the emitted (itemset,
support) sequence equals the serial miner's exactly — not just as a set.
These tests exercise that across worker counts, shuffled rank orders,
synthetic + Quest datasets, and hypothesis-generated databases, plus the
shared-memory publish/attach protocol and its failure paths.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.core import parallel
from repro.core.cfp_growth import mine_array, mine_rank_transactions
from repro.core.conversion import convert
from repro.core.parallel import attach_array, mine_array_parallel, publish_array
from repro.core.ternary import TernaryCfpTree
from repro.datasets.quest import QuestGenerator
from repro.datasets.synthetic import make_retail
from repro.errors import ParallelMineError
from repro.fptree.growth import CountCollector, ListCollector
from repro.machine import Meter
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy, paper_example_database, random_database

JOB_COUNTS = [1, 2, 4]


def _prepared(database, min_support):
    table, transactions = prepare_transactions(database, min_support)
    return transactions, len(table)


def _serial_itemsets(transactions, n_ranks, min_support):
    collector = mine_rank_transactions(transactions, n_ranks, min_support)
    return collector.itemsets


def _build_array(transactions, n_ranks):
    tree = TernaryCfpTree.from_rank_transactions(transactions, n_ranks)
    assert tree.single_path() is None, "array tests need a branching tree"
    return convert(tree)


class TestSerialParallelIdentity:
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_paper_example(self, jobs):
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        expected = _serial_itemsets(transactions, n_ranks, 2)
        collector = mine_rank_transactions(transactions, n_ranks, 2, jobs=jobs)
        assert collector.itemsets == expected

    @pytest.mark.parametrize("jobs", [2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_databases(self, jobs, seed):
        database = random_database(seed)
        transactions, n_ranks = _prepared(database, 3)
        expected = _serial_itemsets(transactions, n_ranks, 3)
        collector = mine_rank_transactions(transactions, n_ranks, 3, jobs=jobs)
        assert collector.itemsets == expected

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_retail_synthetic(self, jobs):
        database = make_retail(n_transactions=300, n_items=120, seed=5)
        transactions, n_ranks = _prepared(database, 6)
        expected = _serial_itemsets(transactions, n_ranks, 6)
        collector = mine_rank_transactions(transactions, n_ranks, 6, jobs=jobs)
        assert collector.itemsets == expected

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_quest_synthetic(self, jobs):
        database = QuestGenerator(
            n_transactions=250,
            avg_transaction_length=8.0,
            avg_pattern_length=3.0,
            n_items=80,
            n_patterns=30,
            seed=23,
        ).generate()
        transactions, n_ranks = _prepared(database, 5)
        expected = _serial_itemsets(transactions, n_ranks, 5)
        collector = mine_rank_transactions(transactions, n_ranks, 5, jobs=jobs)
        assert collector.itemsets == expected

    def test_count_collector_combinatorics_survive_fanout(self):
        # Workers replay emit_path_subsets events, so a CountCollector must
        # count single-path subsets combinatorially, not materialized.
        database = random_database(7, n_transactions=80)
        transactions, n_ranks = _prepared(database, 2)
        serial = mine_rank_transactions(
            transactions, n_ranks, 2, collector=CountCollector()
        )
        parallel_run = mine_rank_transactions(
            transactions, n_ranks, 2, collector=CountCollector(), jobs=3
        )
        assert parallel_run.count == serial.count

    @settings(max_examples=15, deadline=None)
    @given(database=db_strategy)
    def test_property_identity(self, database):
        transactions, n_ranks = _prepared(database, 2)
        expected = _serial_itemsets(transactions, n_ranks, 2)
        collector = mine_rank_transactions(transactions, n_ranks, 2, jobs=2)
        assert collector.itemsets == expected


class TestSchedulingOrder:
    def test_shuffled_rank_order_is_invisible(self):
        database = random_database(11, n_transactions=100)
        transactions, n_ranks = _prepared(database, 2)
        array = _build_array(transactions, n_ranks)
        serial = ListCollector()
        mine_array(array, 2, serial)
        ranks = list(array.active_ranks_descending())
        rng = random.Random(42)
        for __ in range(4):
            rng.shuffle(ranks)
            collector = ListCollector()
            mine_array_parallel(array, 2, collector, jobs=3, rank_order=list(ranks))
            assert collector.itemsets == serial.itemsets

    def test_bad_rank_order_rejected(self):
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        with pytest.raises(ParallelMineError):
            mine_array_parallel(
                array, 2, ListCollector(), jobs=2, rank_order=[0, 1]
            )


class TestMeterMergeParity:
    def test_parallel_meter_matches_serial_ops(self):
        database = random_database(3, n_transactions=80)
        transactions, n_ranks = _prepared(database, 2)
        serial_meter = Meter()
        mine_rank_transactions(transactions, n_ranks, 2, meter=serial_meter)
        parallel_meter = Meter()
        mine_rank_transactions(
            transactions, n_ranks, 2, meter=parallel_meter, jobs=2
        )
        assert parallel_meter.total_ops == serial_meter.total_ops


class TestSharedMemoryProtocol:
    def test_publish_attach_roundtrip(self):
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        segment = publish_array(array)
        try:
            attached = attach_array(segment.name)
            assert attached.n_ranks == array.n_ranks
            assert attached.starts == array.starts
            assert bytes(attached.buffer) == bytes(array.buffer)
            serial = ListCollector()
            mine_array(array, 2, serial)
            roundtrip = ListCollector()
            mine_array(attached, 2, roundtrip)
            assert roundtrip.itemsets == serial.itemsets
        finally:
            parallel._detach_all()
            segment.close()
            segment.unlink()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=64)
        try:
            segment.buf[:8] = b"notcfp\x00\x00"
            with pytest.raises(ParallelMineError):
                attach_array(segment.name)
        finally:
            segment.close()
            segment.unlink()

    def test_segment_unlinked_after_mine(self):
        import pathlib

        shm = pathlib.Path("/dev/shm")
        if not shm.is_dir():  # pragma: no cover - non-POSIX-shm platform
            pytest.skip("no /dev/shm to observe")
        before = {p.name for p in shm.glob("psm_*")}
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        collector = ListCollector()
        mine_array_parallel(array, 2, collector, jobs=2)
        assert collector.itemsets  # the run produced output
        # The parent closes AND unlinks in a finally, so the run must not
        # leave a new segment behind.
        leaked = {p.name for p in shm.glob("psm_*")} - before
        assert leaked == set()

    def test_serial_fallback_paths(self):
        # jobs<=1 and empty arrays must delegate to the serial miner.
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        serial = ListCollector()
        mine_array(array, 2, serial)
        for jobs in (0, 1):
            collector = ListCollector()
            mine_array_parallel(array, 2, collector, jobs=jobs)
            assert collector.itemsets == serial.itemsets
