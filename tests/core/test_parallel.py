"""Determinism and lifecycle tests for the parallel mine phase.

The central contract of :mod:`repro.core.parallel` is byte-identity: for
ANY worker count and ANY task scheduling order, the emitted (itemset,
support) sequence equals the serial miner's exactly — not just as a set.
These tests exercise that across worker counts, shuffled rank orders,
synthetic + Quest datasets, and hypothesis-generated databases, plus the
shared-memory publish/attach protocol and its failure paths.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.core import parallel
from repro.core.cfp_growth import mine_array, mine_rank_transactions
from repro.core.conversion import convert
from repro.core.parallel import attach_array, mine_array_parallel, publish_array
from repro.core.ternary import TernaryCfpTree
from repro.datasets.quest import QuestGenerator
from repro.datasets.synthetic import make_retail
from repro.errors import ParallelMineError
from repro.fptree.growth import CountCollector, ListCollector
from repro.machine import Meter
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy, paper_example_database, random_database

JOB_COUNTS = [1, 2, 4]


@pytest.fixture(autouse=True)
def _no_serial_fallback(monkeypatch):
    # Every fixture array here is far below the small-array threshold;
    # disable the serial fallback so these tests keep exercising the real
    # fan-out machinery. TestSerialFallback overrides this per test.
    monkeypatch.setenv("REPRO_PARALLEL_MIN_BYTES", "0")


def _prepared(database, min_support):
    table, transactions = prepare_transactions(database, min_support)
    return transactions, len(table)


def _serial_itemsets(transactions, n_ranks, min_support):
    collector = mine_rank_transactions(transactions, n_ranks, min_support)
    return collector.itemsets


def _build_array(transactions, n_ranks):
    tree = TernaryCfpTree.from_rank_transactions(transactions, n_ranks)
    assert tree.single_path() is None, "array tests need a branching tree"
    return convert(tree)


class TestSerialParallelIdentity:
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_paper_example(self, jobs):
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        expected = _serial_itemsets(transactions, n_ranks, 2)
        collector = mine_rank_transactions(transactions, n_ranks, 2, jobs=jobs)
        assert collector.itemsets == expected

    @pytest.mark.parametrize("jobs", [2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_databases(self, jobs, seed):
        database = random_database(seed)
        transactions, n_ranks = _prepared(database, 3)
        expected = _serial_itemsets(transactions, n_ranks, 3)
        collector = mine_rank_transactions(transactions, n_ranks, 3, jobs=jobs)
        assert collector.itemsets == expected

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_retail_synthetic(self, jobs):
        database = make_retail(n_transactions=300, n_items=120, seed=5)
        transactions, n_ranks = _prepared(database, 6)
        expected = _serial_itemsets(transactions, n_ranks, 6)
        collector = mine_rank_transactions(transactions, n_ranks, 6, jobs=jobs)
        assert collector.itemsets == expected

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_quest_synthetic(self, jobs):
        database = QuestGenerator(
            n_transactions=250,
            avg_transaction_length=8.0,
            avg_pattern_length=3.0,
            n_items=80,
            n_patterns=30,
            seed=23,
        ).generate()
        transactions, n_ranks = _prepared(database, 5)
        expected = _serial_itemsets(transactions, n_ranks, 5)
        collector = mine_rank_transactions(transactions, n_ranks, 5, jobs=jobs)
        assert collector.itemsets == expected

    def test_count_collector_combinatorics_survive_fanout(self):
        # Workers replay emit_path_subsets events, so a CountCollector must
        # count single-path subsets combinatorially, not materialized.
        database = random_database(7, n_transactions=80)
        transactions, n_ranks = _prepared(database, 2)
        serial = mine_rank_transactions(
            transactions, n_ranks, 2, collector=CountCollector()
        )
        parallel_run = mine_rank_transactions(
            transactions, n_ranks, 2, collector=CountCollector(), jobs=3
        )
        assert parallel_run.count == serial.count

    @settings(max_examples=15, deadline=None)
    @given(database=db_strategy)
    def test_property_identity(self, database):
        transactions, n_ranks = _prepared(database, 2)
        expected = _serial_itemsets(transactions, n_ranks, 2)
        collector = mine_rank_transactions(transactions, n_ranks, 2, jobs=2)
        assert collector.itemsets == expected


class TestSchedulingOrder:
    def test_shuffled_rank_order_is_invisible(self):
        database = random_database(11, n_transactions=100)
        transactions, n_ranks = _prepared(database, 2)
        array = _build_array(transactions, n_ranks)
        serial = ListCollector()
        mine_array(array, 2, serial)
        ranks = list(array.active_ranks_descending())
        rng = random.Random(42)
        for __ in range(4):
            rng.shuffle(ranks)
            collector = ListCollector()
            mine_array_parallel(array, 2, collector, jobs=3, rank_order=list(ranks))
            assert collector.itemsets == serial.itemsets

    def test_bad_rank_order_rejected(self):
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        with pytest.raises(ParallelMineError):
            mine_array_parallel(
                array, 2, ListCollector(), jobs=2, rank_order=[0, 1]
            )


class TestMeterMergeParity:
    def test_parallel_meter_matches_serial_ops(self):
        database = random_database(3, n_transactions=80)
        transactions, n_ranks = _prepared(database, 2)
        serial_meter = Meter()
        mine_rank_transactions(transactions, n_ranks, 2, meter=serial_meter)
        parallel_meter = Meter()
        mine_rank_transactions(
            transactions, n_ranks, 2, meter=parallel_meter, jobs=2
        )
        assert parallel_meter.total_ops == serial_meter.total_ops


class TestSharedMemoryProtocol:
    def test_publish_attach_roundtrip(self):
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        segment = publish_array(array)
        try:
            attached = attach_array(segment.name)
            assert attached.n_ranks == array.n_ranks
            assert attached.starts == array.starts
            assert bytes(attached.buffer) == bytes(array.buffer)
            serial = ListCollector()
            mine_array(array, 2, serial)
            roundtrip = ListCollector()
            mine_array(attached, 2, roundtrip)
            assert roundtrip.itemsets == serial.itemsets
        finally:
            parallel._detach_all()
            segment.close()
            segment.unlink()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=64)
        try:
            segment.buf[:8] = b"notcfp\x00\x00"
            with pytest.raises(ParallelMineError):
                attach_array(segment.name)
        finally:
            segment.close()
            segment.unlink()

    def test_attach_fault_site_fires(self):
        # The parallel.attach site fires before the segment lookup, so a
        # planted fault surfaces as InjectedFault even for a bogus name.
        from repro import faultinject
        from repro.errors import InjectedFault

        faultinject.install("parallel.attach:raise")
        try:
            with pytest.raises(InjectedFault):
                attach_array("repro-test-no-such-segment")
        finally:
            faultinject.reset()

    def test_attach_fault_flake_is_transient(self):
        # A flaky attach is the retryable failure the supervisor retries;
        # once the budget is spent the attach proceeds to the real error.
        from repro import faultinject
        from repro.errors import TransientIOError

        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        segment = publish_array(array)
        faultinject.install("parallel.attach:flake:times=1")
        try:
            with pytest.raises(TransientIOError):
                attach_array(segment.name)
            attached = attach_array(segment.name)
            assert bytes(attached.buffer) == bytes(array.buffer)
        finally:
            faultinject.reset()
            parallel._detach_all()
            segment.close()
            segment.unlink()

    def test_segment_unlinked_after_mine(self):
        import pathlib

        shm = pathlib.Path("/dev/shm")
        if not shm.is_dir():  # pragma: no cover - non-POSIX-shm platform
            pytest.skip("no /dev/shm to observe")
        before = {p.name for p in shm.glob("psm_*")}
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        collector = ListCollector()
        mine_array_parallel(array, 2, collector, jobs=2)
        assert collector.itemsets  # the run produced output
        # The parent closes AND unlinks in a finally, so the run must not
        # leave a new segment behind.
        leaked = {p.name for p in shm.glob("psm_*")} - before
        assert leaked == set()

    def test_serial_fallback_paths(self):
        # jobs<=1 and empty arrays must delegate to the serial miner.
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        serial = ListCollector()
        mine_array(array, 2, serial)
        for jobs in (0, 1):
            collector = ListCollector()
            mine_array_parallel(array, 2, collector, jobs=jobs)
            assert collector.itemsets == serial.itemsets


class TestSmallArrayFallback:
    """The adaptive serial fallback for arrays below the size threshold."""

    def _run_traced(self, array, **kwargs):
        from repro import obs
        from repro.obs.tracer import Tracer

        obs.metrics.reset()
        tracer = Tracer()
        previous = obs.set_tracer(tracer)
        collector = ListCollector()
        try:
            mine_array_parallel(array, 2, collector, jobs=2, **kwargs)
        finally:
            obs.set_tracer(previous)
            obs.metrics.reset()
        return collector, tracer

    def test_small_array_runs_serial(self, monkeypatch):
        from repro import obs

        monkeypatch.delenv("REPRO_PARALLEL_MIN_BYTES", raising=False)
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        assert array.memory_bytes < parallel.DEFAULT_PARALLEL_MIN_BYTES
        serial = ListCollector()
        mine_array(array, 2, serial)
        obs.metrics.reset()
        collector, tracer = self._run_traced(array)
        assert collector.itemsets == serial.itemsets
        names = {record.name for record in tracer.records}
        assert "mine_parallel" not in names  # no fan-out happened

    def test_fallback_decision_is_counted(self, monkeypatch):
        from repro import obs
        from repro.obs.tracer import Tracer

        monkeypatch.delenv("REPRO_PARALLEL_MIN_BYTES", raising=False)
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        obs.metrics.reset()
        previous = obs.set_tracer(Tracer())
        try:
            mine_array_parallel(array, 2, ListCollector(), jobs=2)
            assert obs.metrics.counters().get("parallel.serial_fallback") == 1
        finally:
            obs.set_tracer(previous)
            obs.metrics.reset()

    def test_force_bypasses_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_MIN_BYTES", raising=False)
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        serial = ListCollector()
        mine_array(array, 2, serial)
        collector, tracer = self._run_traced(array, force=True)
        assert collector.itemsets == serial.itemsets
        names = {record.name for record in tracer.records}
        assert "mine_parallel" in names  # fan-out despite the tiny array

    def test_env_threshold_respected(self, monkeypatch):
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        monkeypatch.setenv("REPRO_PARALLEL_MIN_BYTES", str(array.memory_bytes))
        __, tracer = self._run_traced(array)
        assert "mine_parallel" in {record.name for record in tracer.records}
        monkeypatch.setenv(
            "REPRO_PARALLEL_MIN_BYTES", str(array.memory_bytes + 1)
        )
        __, tracer = self._run_traced(array)
        assert "mine_parallel" not in {record.name for record in tracer.records}

    def test_rank_order_still_validated_on_fallback(self, monkeypatch):
        # Argument validation precedes the size fallback: a bad rank_order
        # must raise even when the array would have run serially anyway.
        monkeypatch.delenv("REPRO_PARALLEL_MIN_BYTES", raising=False)
        transactions, n_ranks = _prepared(paper_example_database(), 2)
        array = _build_array(transactions, n_ranks)
        with pytest.raises(ParallelMineError):
            mine_array_parallel(
                array, 2, ListCollector(), jobs=2, rank_order=[0, 1]
            )
