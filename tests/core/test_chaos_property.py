"""Chaos property: injected failures never change parallel output.

The contract under test is the strongest one the runtime makes: for ANY
schedule of injected single-worker failures — a hard kill (the OOM-killer
case), a transient error escaping a task — the supervised parallel build
and mine phases produce *byte-identical* output to the failure-free
serial path. Hypothesis draws the failure schedule; the assertion never
changes.

Real process pools are used (a kill must actually break a pool), so
example counts are kept small; the exhaustive unit-level coverage lives
in ``tests/core/test_runtime.py``.
"""

from __future__ import annotations

import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faultinject, obs
from repro.core.build_parallel import build_tree_parallel
from repro.core.cfp_growth import mine_rank_transactions
from repro.core.conversion import convert
from repro.core.parallel import mine_array_parallel, shutdown_pools
from repro.core.ternary import TernaryCfpTree
from repro.fptree.growth import ListCollector
from repro.runtime import RetryPolicy
from repro.util.items import prepare_transactions
from tests.conftest import random_database
from tests.core.test_kernels_identity import mine_reference

#: Ample retry budget and no real backoff: chaos schedules inject at most
#: a handful of failures, and the property is identity, not latency.
CHAOS_POLICY = RetryPolicy(
    max_retries=4, backoff_base=0.0, heartbeat_interval=0.02
)

#: One injectable failure per draw: (site, action). ``kill`` breaks the
#: pool outright; ``flake`` surfaces a retryable error from the task.
FAILURE_POINTS = [
    ("mine.worker", "kill"),
    ("mine.worker", "flake"),
    ("build.worker", "kill"),
    ("build.worker", "flake"),
]

#: Failure schedules: a non-empty subset of the failure points, each
#: firing exactly once (``times=1`` holds across worker processes).
schedules = st.lists(
    st.sampled_from(FAILURE_POINTS), min_size=1, max_size=3, unique=True
)


@pytest.fixture(autouse=True)
def _chaos_hygiene(monkeypatch):
    # Fixture arrays are tiny; keep the real fan-out machinery engaged.
    monkeypatch.setenv("REPRO_PARALLEL_MIN_BYTES", "0")
    yield
    faultinject.reset()
    shutdown_pools()  # injected kills leave broken pools behind
    obs.metrics.reset()


def _serial_reference(database, min_support):
    table, transactions = prepare_transactions(database, min_support)
    n_ranks = len(table)
    array = convert(TernaryCfpTree.from_rank_transactions(transactions, n_ranks))
    collector = mine_rank_transactions(transactions, n_ranks, min_support)
    return transactions, n_ranks, array, collector.itemsets


def _install(schedule):
    text = ";".join(f"{site}:{action}:times=1" for site, action in schedule)
    state_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    faultinject.install(text, state_dir=state_dir)
    return state_dir


class TestChaosIdentity:
    @given(schedule=schedules, seed=st.integers(min_value=0, max_value=2))
    @settings(max_examples=6, deadline=None)
    def test_any_failure_schedule_preserves_identity(self, schedule, seed):
        database = random_database(seed, n_transactions=50, n_items=10)
        transactions, n_ranks, want_array, want_itemsets = _serial_reference(
            database, min_support=3
        )
        state_dir = _install(schedule)
        try:
            built = build_tree_parallel(
                transactions, n_ranks, jobs=2, policy=CHAOS_POLICY
            )
            assert bytes(built.buffer) == bytes(want_array.buffer)
            collector = ListCollector()
            mine_array_parallel(
                want_array, 3, collector, jobs=2, policy=CHAOS_POLICY
            )
            assert collector.itemsets == want_itemsets
        finally:
            faultinject.reset()
            shutdown_pools()
            shutil.rmtree(state_dir, ignore_errors=True)

    def test_kill_every_attempt_degrades_to_identical_serial(self):
        # Unlimited kills exhaust the retry budget; the degraded-serial
        # path must still produce the exact bytes and itemsets.
        database = random_database(4, n_transactions=50, n_items=10)
        transactions, n_ranks, want_array, want_itemsets = _serial_reference(
            database, min_support=3
        )
        policy = RetryPolicy(
            max_retries=0, backoff_base=0.0, heartbeat_interval=0.02
        )
        obs.metrics.reset()
        faultinject.install("mine.worker:kill;build.worker:kill")
        built = build_tree_parallel(transactions, n_ranks, jobs=2, policy=policy)
        assert bytes(built.buffer) == bytes(want_array.buffer)
        collector = ListCollector()
        mine_array_parallel(want_array, 3, collector, jobs=2, policy=policy)
        assert collector.itemsets == want_itemsets
        assert obs.metrics.get("parallel.degraded_serial") == 2
        assert obs.metrics.get("parallel.worker_deaths") > 0

    def test_no_fallback_raises_instead_of_degrading(self):
        from repro.errors import ParallelBuildError, ParallelMineError

        database = random_database(5, n_transactions=50, n_items=10)
        transactions, n_ranks, want_array, __ = _serial_reference(
            database, min_support=3
        )
        policy = RetryPolicy(
            max_retries=0,
            backoff_base=0.0,
            heartbeat_interval=0.02,
            fallback_serial=False,
        )
        faultinject.install("mine.worker:kill;build.worker:kill")
        with pytest.raises(ParallelBuildError):
            build_tree_parallel(transactions, n_ranks, jobs=2, policy=policy)
        with pytest.raises(ParallelMineError):
            mine_array_parallel(want_array, 3, ListCollector(), jobs=2, policy=policy)

    def test_retries_are_observable(self):
        database = random_database(6, n_transactions=50, n_items=10)
        transactions, n_ranks, want_array, want_itemsets = _serial_reference(
            database, min_support=3
        )
        obs.metrics.reset()
        state_dir = _install([("mine.worker", "kill")])
        try:
            collector = ListCollector()
            mine_array_parallel(
                want_array, 3, collector, jobs=2, policy=CHAOS_POLICY
            )
            assert collector.itemsets == want_itemsets
            assert obs.metrics.get("parallel.retries") > 0
            assert obs.metrics.get("parallel.worker_deaths") > 0
            assert obs.metrics.get("parallel.degraded_serial") == 0
        finally:
            shutil.rmtree(state_dir, ignore_errors=True)


class TestChaosKernelIdentity:
    """Columnar kernels under fault injection == the per-node reference.

    The existing identity legs pin chaos output to the *columnar* serial
    miner; this leg pins it to the retained pre-kernel per-node route
    (``mine_reference``), so a kernel bug cannot hide behind serial and
    parallel sharing the same kernels.
    """

    @given(schedule=schedules, seed=st.integers(min_value=10, max_value=12))
    @settings(max_examples=4, deadline=None)
    def test_itemsets_identical_to_reference_under_faults(self, schedule, seed):
        database = random_database(seed, n_transactions=50, n_items=10)
        __, __, want_array, __ = _serial_reference(database, min_support=3)
        want_itemsets = mine_reference(want_array, 3).itemsets
        state_dir = _install(schedule)
        try:
            collector = ListCollector()
            mine_array_parallel(
                want_array, 3, collector, jobs=2, policy=CHAOS_POLICY
            )
            assert collector.itemsets == want_itemsets
        finally:
            faultinject.reset()
            shutdown_pools()
            shutil.rmtree(state_dir, ignore_errors=True)
