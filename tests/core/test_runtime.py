"""Unit tests for the supervised runtime: policy, classification, retry.

The :class:`repro.runtime.Supervisor` is exercised here against thread
pools and scripted fakes so every control path — retry, exhaustion,
poisoning, timeouts, broken pools — is hit deterministically and fast.
End-to-end chaos against real process pools lives in
``tests/core/test_chaos_property.py``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import runtime
from repro.errors import (
    SupervisionError,
    TaskTimeoutError,
    TransientIOError,
)
from repro.runtime import (
    RETRYABLE_KINDS,
    FailureKind,
    RetryPolicy,
    Supervisor,
    classify_failure,
    default_policy,
)

#: A fast policy for supervisor tests: no real sleeping between rounds.
FAST = RetryPolicy(max_retries=2, backoff_base=0.0, heartbeat_interval=0.01)


@pytest.fixture(autouse=True)
def _clean_configuration():
    runtime.reset_configuration()
    yield
    runtime.reset_configuration()


class TestBackoff:
    def test_first_retry_waits_the_base(self):
        assert RetryPolicy(backoff_base=0.1).backoff(1) == pytest.approx(0.1)

    def test_growth_is_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=3.0, backoff_max=100)
        assert policy.backoff(2) == pytest.approx(0.3)
        assert policy.backoff(3) == pytest.approx(0.9)

    def test_monotone_until_capped(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_factor=2.0, backoff_max=2.0)
        delays = [policy.backoff(n) for n in range(1, 12)]
        assert delays == sorted(delays)
        assert max(delays) == policy.backoff_max

    def test_cap_is_respected(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=10.0, backoff_max=1.5)
        assert policy.backoff(50) == 1.5

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestClassifyFailure:
    @pytest.mark.parametrize(
        "exc, kind",
        [
            (BrokenProcessPool("worker died"), FailureKind.WORKER_CRASH),
            (TaskTimeoutError("too slow"), FailureKind.TIMEOUT),
            (TransientIOError("flaky read"), FailureKind.TRANSIENT_IO),
            (FileNotFoundError("/dev/shm/gone"), FailureKind.ATTACH_FAILURE),
            (ValueError("bad input"), FailureKind.POISONED),
            (ZeroDivisionError(), FailureKind.POISONED),
        ],
    )
    def test_mapping(self, exc, kind):
        assert classify_failure(exc) is kind

    def test_poisoned_and_pool_unavailable_are_terminal(self):
        assert FailureKind.POISONED not in RETRYABLE_KINDS
        assert FailureKind.POOL_UNAVAILABLE not in RETRYABLE_KINDS
        assert len(RETRYABLE_KINDS) == 4


class TestPolicyConfiguration:
    def test_defaults(self):
        policy = default_policy()
        assert policy.max_retries == 2
        assert policy.task_timeout is None
        assert policy.fallback_serial is True

    def test_environment_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "7.5")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_NO_FALLBACK", "1")
        policy = default_policy()
        assert policy.task_timeout == 7.5
        assert policy.max_retries == 5
        assert policy.fallback_serial is False

    def test_zero_timeout_means_no_deadline(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
        assert default_policy().task_timeout is None
        runtime.configure(task_timeout=0)
        assert default_policy().task_timeout is None

    def test_garbage_environment_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "soon")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "lots")
        policy = default_policy()
        assert policy.task_timeout is None
        assert policy.max_retries == 2

    def test_configure_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_NO_FALLBACK", "1")
        runtime.configure(max_retries=1)
        policy = default_policy()
        assert policy.max_retries == 1
        # configure(fallback=None) left the env decision alone.
        assert policy.fallback_serial is False

    def test_reset_configuration(self):
        runtime.configure(max_retries=9)
        runtime.reset_configuration()
        assert default_policy().max_retries == 2


# ----------------------------------------------------------------------
# Supervisor control flow (thread pools; no real processes)
# ----------------------------------------------------------------------

#: Scripted failures: task key -> list of exceptions to raise before
#: succeeding. Module-level so thread tasks can share it.
_SCRIPT: dict[str, list[BaseException]] = {}
_CALLS: dict[str, int] = {}
_LOCK = threading.Lock()


def _scripted(key: str):
    with _LOCK:
        _CALLS[key] = _CALLS.get(key, 0) + 1
        failures = _SCRIPT.get(key)
        if failures:
            raise failures.pop(0)
    return f"result-{key}"


@pytest.fixture(autouse=True)
def _clean_script():
    _SCRIPT.clear()
    _CALLS.clear()
    yield
    _SCRIPT.clear()
    _CALLS.clear()


def _supervise(tasks, policy=FAST, pool_factory=None, resets=None):
    pool_factory = pool_factory or (lambda: ThreadPoolExecutor(max_workers=2))
    resets = resets if resets is not None else []
    supervisor = Supervisor(
        pool_factory, policy, phase="test", pool_reset=lambda: resets.append(1)
    )
    return supervisor.run(tasks)


class TestSupervisorRuns:
    def test_all_success(self):
        tasks = {k: (_scripted, (k,)) for k in ("a", "b", "c")}
        assert _supervise(tasks) == {
            "a": "result-a",
            "b": "result-b",
            "c": "result-c",
        }
        assert _CALLS == {"a": 1, "b": 1, "c": 1}

    def test_transient_failure_is_retried_to_success(self):
        _SCRIPT["a"] = [TransientIOError("once"), TransientIOError("twice")]
        tasks = {k: (_scripted, (k,)) for k in ("a", "b")}
        assert _supervise(tasks) == {"a": "result-a", "b": "result-b"}
        assert _CALLS["a"] == 3

    def test_completed_results_kept_across_rounds(self):
        _SCRIPT["slowpoke"] = [TransientIOError("flake")]
        tasks = {k: (_scripted, (k,)) for k in ("done", "slowpoke")}
        results = _supervise(tasks)
        assert results["done"] == "result-done"
        # The healthy task was never re-executed by the retry round.
        assert _CALLS["done"] == 1

    def test_poisoned_task_is_not_retried(self):
        _SCRIPT["bad"] = [ValueError("deterministic bug")]
        with pytest.raises(SupervisionError) as info:
            _supervise({"bad": (_scripted, ("bad",))})
        assert info.value.kind == FailureKind.POISONED.value
        assert _CALLS["bad"] == 1

    def test_retry_budget_exhaustion(self):
        _SCRIPT["a"] = [TransientIOError(str(n)) for n in range(10)]
        policy = RetryPolicy(max_retries=1, backoff_base=0.0, heartbeat_interval=0.01)
        with pytest.raises(SupervisionError) as info:
            _supervise({"a": (_scripted, ("a",))}, policy=policy)
        assert info.value.kind == FailureKind.TRANSIENT_IO.value
        assert info.value.failures == {"a": "transient_io"}
        assert _CALLS["a"] == 2  # first attempt + one retry

    def test_zero_retries_fails_on_first_failure(self):
        _SCRIPT["a"] = [TransientIOError("once")]
        policy = RetryPolicy(max_retries=0, backoff_base=0.0, heartbeat_interval=0.01)
        with pytest.raises(SupervisionError):
            _supervise({"a": (_scripted, ("a",))}, policy=policy)
        assert _CALLS["a"] == 1

    def test_pool_factory_failure_is_pool_unavailable(self):
        def refuse():
            raise OSError("fork: resource temporarily unavailable")

        with pytest.raises(SupervisionError) as info:
            _supervise({"a": (_scripted, ("a",))}, pool_factory=refuse)
        assert info.value.kind == FailureKind.POOL_UNAVAILABLE.value

    def test_pool_that_never_accepts_tasks_does_not_spin(self):
        class DeadPool:
            def submit(self, fn, *args):
                raise BrokenProcessPool("dead on arrival")

            def shutdown(self, **kwargs):
                pass

        resets = []
        with pytest.raises(SupervisionError) as info:
            _supervise(
                {"a": (_scripted, ("a",))},
                pool_factory=DeadPool,
                resets=resets,
            )
        assert info.value.kind == FailureKind.POOL_UNAVAILABLE.value
        # Each barren round discarded the pool before the next attempt.
        assert len(resets) == 2

    def test_timeout_charges_and_retries_the_hung_task(self):
        done = threading.Event()

        def hang_once(key):
            with _LOCK:
                _CALLS[key] = _CALLS.get(key, 0) + 1
                first = _CALLS[key] == 1
            if first:
                done.wait(0.5)  # well past the deadline
                raise TransientIOError("should have been abandoned")
            return f"result-{key}"

        policy = RetryPolicy(
            max_retries=2,
            task_timeout=0.05,
            backoff_base=0.0,
            heartbeat_interval=0.01,
        )
        resets = []
        try:
            results = _supervise(
                {"hung": (hang_once, ("hung",))}, policy=policy, resets=resets
            )
        finally:
            done.set()  # release the abandoned first attempt
        assert results == {"hung": "result-hung"}
        assert _CALLS["hung"] == 2
        assert resets  # the timed-out pool was discarded
