"""Unit tests for the ternary CFP-tree node byte formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import node_codec as codec
from repro.core.node_codec import (
    ChainNode,
    StandardNode,
    decode_embedded_leaf,
    decode_node,
    encode_embedded_leaf,
    is_chain_tag,
    leaf_embeddable,
    pointer_slot,
    slot_address,
    slot_is_embedded,
)
from repro.errors import ChainOverflowError, CorruptBufferError

slots = st.one_of(
    st.none(),
    st.integers(min_value=1, max_value=(1 << 39)).map(pointer_slot),
)


class TestEmbeddedLeaf:
    def test_roundtrip(self):
        raw = encode_embedded_leaf(7, 12345)
        assert len(raw) == 5
        assert raw[0] == 0xFF
        assert decode_embedded_leaf(raw) == (7, 12345)

    def test_embeddability_bounds(self):
        assert leaf_embeddable(0, 0)
        assert leaf_embeddable(255, (1 << 24) - 1)
        assert not leaf_embeddable(256, 0)
        assert not leaf_embeddable(0, 1 << 24)
        assert not leaf_embeddable(-1, 0)

    def test_encode_rejects_unembeddable(self):
        with pytest.raises(CorruptBufferError):
            encode_embedded_leaf(300, 0)

    def test_decode_rejects_non_leaf(self):
        with pytest.raises(CorruptBufferError):
            decode_embedded_leaf(b"\x01\x02\x03\x04\x05")

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=(1 << 24) - 1),
    )
    def test_roundtrip_property(self, delta, pcount):
        assert decode_embedded_leaf(encode_embedded_leaf(delta, pcount)) == (
            delta,
            pcount,
        )


class TestSlots:
    def test_pointer_slot_roundtrip(self):
        raw = pointer_slot(0x0102030405)
        assert slot_address(raw) == 0x0102030405
        assert not slot_is_embedded(raw)

    def test_embedded_slot_detected(self):
        assert slot_is_embedded(encode_embedded_leaf(1, 1))

    def test_address_of_embedded_raises(self):
        with pytest.raises(CorruptBufferError):
            slot_address(encode_embedded_leaf(1, 1))


class TestStandardNode:
    def test_paper_figure4_seven_bytes(self):
        # delta_item=3, pcount=0, only suffix present -> 7 bytes total.
        node = StandardNode(3, 0, suffix=pointer_slot(100))
        encoded = node.encode()
        assert len(encoded) == 7
        assert encoded[0] == 0b11100001

    def test_minimal_leaf_three_bytes(self):
        # §3.3: smallest standard node = mask + delta_item + pcount byte.
        node = StandardNode(5, 1)
        assert len(node.encode()) == 3

    def test_maximal_node_24_bytes(self):
        # §3.3 / Appendix A: the largest footprint is 24 bytes.
        node = StandardNode(
            0xDEADBEEF,
            0xCAFEBABE,
            left=pointer_slot(1),
            right=pointer_slot(2),
            suffix=pointer_slot(3),
        )
        assert len(node.encode()) == 24

    def test_decode_at_offset(self):
        node = StandardNode(3, 7, left=pointer_slot(42))
        buf = b"\xaa\xbb" + node.encode()
        decoded, size = StandardNode.decode(buf, 2)
        assert size == len(node.encode())
        assert decoded.delta_item == 3
        assert decoded.pcount == 7
        assert slot_address(decoded.left) == 42
        assert decoded.right is None
        assert decoded.suffix is None

    def test_embedded_leaf_survives_in_slot(self):
        leaf = encode_embedded_leaf(9, 2)
        node = StandardNode(1, 0, suffix=leaf)
        decoded, __ = StandardNode.decode(node.encode(), 0)
        assert decoded.suffix == leaf

    @given(
        st.integers(min_value=1, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        slots,
        slots,
        slots,
    )
    def test_roundtrip(self, delta, pcount, left, right, suffix):
        node = StandardNode(delta, pcount, left, right, suffix)
        encoded = node.encode()
        decoded, size = StandardNode.decode(encoded, 0)
        assert size == len(encoded)
        assert (
            decoded.delta_item,
            decoded.pcount,
            decoded.left,
            decoded.right,
            decoded.suffix,
        ) == (delta, pcount, left, right, suffix)


class TestChainNode:
    def test_fast_entries_one_byte(self):
        chain = ChainNode([(3, 0), (1, 0), (255, 0)])
        # tag + length + 3 fast entries = 5 bytes.
        assert len(chain.encode()) == 5

    def test_escape_entries(self):
        chain = ChainNode([(300, 0), (1, 7)])
        decoded, __ = ChainNode.decode(chain.encode(), 0)
        assert decoded.entries == [(300, 0), (1, 7)]

    def test_tag_disambiguates_from_standard(self):
        chain = ChainNode([(1, 0), (2, 0)])
        standard = StandardNode(1, 0)
        assert is_chain_tag(chain.encode()[0])
        assert not is_chain_tag(standard.encode()[0])

    def test_decode_node_dispatch(self):
        chain = ChainNode([(1, 0), (2, 0)])
        node, __ = decode_node(chain.encode(), 0)
        assert isinstance(node, ChainNode)
        std = StandardNode(4, 2)
        node, __ = decode_node(std.encode(), 0)
        assert isinstance(node, StandardNode)

    def test_length_limit(self):
        with pytest.raises(ChainOverflowError):
            ChainNode([(1, 0)] * 16).encode()
        with pytest.raises(ChainOverflowError):
            ChainNode([]).encode()

    def test_decode_corrupt_length(self):
        good = ChainNode([(1, 0), (2, 0)]).encode()
        corrupt = bytes([good[0], 0]) + good[2:]
        with pytest.raises(CorruptBufferError):
            ChainNode.decode(corrupt, 0)

    def test_decode_rejects_standard(self):
        with pytest.raises(CorruptBufferError):
            ChainNode.decode(StandardNode(1, 0).encode(), 0)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=100_000),
                st.integers(min_value=0, max_value=100_000),
            ),
            min_size=1,
            max_size=15,
        ),
        slots,
        slots,
        slots,
    )
    def test_roundtrip(self, entries, left, right, suffix):
        chain = ChainNode(entries, left, right, suffix)
        encoded = chain.encode()
        decoded, size = ChainNode.decode(encoded, 0)
        assert size == len(encoded)
        assert decoded.entries == entries
        assert (decoded.left, decoded.right, decoded.suffix) == (left, right, suffix)
