"""Stateful property test: the ternary CFP-tree under arbitrary op orders.

Hypothesis drives interleaved inserts (fresh paths, repeats, partial
prefixes, heavy counts) against the byte-level tree while a logical
CFP-tree acts as the model; after every step the physical structure must
validate and remain equivalent to the model, and conversion plus
checkpoint round-trips must preserve everything.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.cfp_tree import CfpTree
from repro.core.conversion import convert, cumulative_counts
from repro.core.ternary import TernaryCfpTree
from repro.core.validate import validate_tree

N_RANKS = 12

transactions = st.lists(
    st.integers(min_value=1, max_value=N_RANKS), min_size=1, max_size=8
).map(lambda ranks: sorted(set(ranks)))


class TernaryCfpMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = TernaryCfpTree(N_RANKS)
        self.model = CfpTree(N_RANKS)
        self.inserted: list[list[int]] = []

    @rule(ranks=transactions, count=st.integers(min_value=1, max_value=1000))
    def insert(self, ranks, count):
        self.tree.insert(ranks, count)
        self.model.insert(ranks, count)
        self.inserted.append(ranks)

    @rule(index=st.integers(min_value=0, max_value=10_000))
    def reinsert_existing(self, index):
        """Re-inserting a seen transaction exercises the pcount-bump path."""
        if not self.inserted:
            return
        ranks = self.inserted[index % len(self.inserted)]
        self.tree.insert(ranks)
        self.model.insert(ranks)

    @rule(index=st.integers(min_value=0, max_value=10_000))
    def insert_prefix(self, index):
        """Prefixes end mid-structure — the chain-interior pcount path."""
        if not self.inserted:
            return
        ranks = self.inserted[index % len(self.inserted)]
        prefix = ranks[: max(1, len(ranks) // 2)]
        self.tree.insert(prefix)
        self.model.insert(prefix)

    @invariant()
    def byte_structure_validates(self):
        report = validate_tree(self.tree)
        assert report.ok

    @invariant()
    def equivalent_to_model(self):
        assert self.tree.node_count == self.model.node_count
        assert self.tree.transaction_count == self.model.transaction_count
        physical = sorted(self.tree.iter_nodes_with_parent())
        logical = sorted(
            (rank, node.pcount, _parent_rank)
            for rank, node, _parent_rank in _walk(self.model)
        )
        assert physical == logical

    @invariant()
    def conversion_preserves_counts(self):
        counts = cumulative_counts(self.tree)
        array = convert(self.tree)
        assert array.node_count == self.tree.node_count
        assert sum(counts) >= self.tree.transaction_count


def _walk(model: CfpTree):
    stack = [(rank, node, 0) for rank, node in model.root.children.items()]
    while stack:
        rank, node, parent = stack.pop()
        yield rank, node, parent
        stack.extend(
            (child_rank, child, rank) for child_rank, child in node.children.items()
        )


TernaryCfpMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestTernaryCfpStateful = TernaryCfpMachine.TestCase
