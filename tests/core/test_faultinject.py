"""Unit tests for the deterministic fault-injection facility."""

from __future__ import annotations

import os
import time

import pytest

from repro import faultinject, obs
from repro.errors import (
    FaultSpecError,
    InjectedFault,
    TransientIOError,
    UnknownFaultSiteError,
)
from repro.faultinject import FaultPlan, parse_specs


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faultinject.reset()
    yield
    faultinject.reset()
    obs.metrics.reset()


class TestParsing:
    def test_minimal_spec(self):
        (spec,) = parse_specs("mine.worker:kill")
        assert spec.site == "mine.worker"
        assert spec.action == "kill"
        assert spec.times == 0  # unlimited
        assert spec.match == ()

    def test_full_spec(self):
        (spec,) = parse_specs("build.worker:delay:seconds=0.5,times=3,shard=2")
        assert spec.seconds == 0.5
        assert spec.times == 3
        assert spec.match == (("shard", "2"),)

    def test_multiple_specs_and_whitespace(self):
        specs = parse_specs(" mine.worker:kill:times=1 ; pagefile.read:flake ;")
        assert [s.site for s in specs] == ["mine.worker", "pagefile.read"]

    def test_spec_ids_are_distinct(self):
        specs = parse_specs("mine.worker:kill;mine.worker:kill")
        assert specs[0].spec_id != specs[1].spec_id

    @pytest.mark.parametrize(
        "text",
        [
            "justasite",  # no action
            "mine.worker:explode",  # unknown action
            ":kill",  # empty site
            "mine.worker:kill:times",  # parameter without '='
            "mine.worker:kill:times=soon",  # non-integer count
            "mine.worker:delay:seconds=abc",  # non-float delay
            "a:b:c:d",  # too many fields
        ],
    )
    def test_bad_specs_rejected(self, text):
        with pytest.raises(FaultSpecError):
            parse_specs(text)


class TestSiteRegistry:
    def test_canonical_sites(self):
        assert faultinject.SITES == frozenset(
            {
                "build.worker",
                "checkpoint.write",
                "delta.merge",
                "mine.worker",
                "pagefile.prefetch",
                "pagefile.read",
                "parallel.attach",
                "snapshot.flip",
            }
        )

    def test_unknown_site_rejected_at_parse_time(self):
        with pytest.raises(UnknownFaultSiteError):
            parse_specs("mine.wroker:kill")  # the typo that used to no-op

    def test_unknown_site_error_is_a_spec_error(self):
        # Existing broad handlers (and REPRO_FAULTS plumbing) catch
        # FaultSpecError; the typed subclass must stay inside that net.
        assert issubclass(UnknownFaultSiteError, FaultSpecError)

    def test_fire_unknown_site_rejected_under_active_plan(self):
        faultinject.install("mine.worker:raise")
        with pytest.raises(UnknownFaultSiteError):
            faultinject.fire("not.a.site")

    def test_fire_unknown_site_is_noop_without_plan(self):
        # The production fast path stays one None check: no plan, no
        # validation, no exception.
        faultinject.fire("not.a.site")


class TestMatching:
    def test_context_match(self):
        (spec,) = parse_specs("mine.worker:raise:rank=7")
        assert spec.matches("mine.worker", {"rank": 7})
        assert not spec.matches("mine.worker", {"rank": 8})
        assert not spec.matches("mine.worker", {})
        assert not spec.matches("build.worker", {"rank": 7})

    def test_unmatched_site_does_not_fire(self):
        faultinject.install("mine.worker:raise:rank=1")
        faultinject.fire("mine.worker", rank=2)  # no exception
        with pytest.raises(InjectedFault):
            faultinject.fire("mine.worker", rank=1)


class TestFiringBudget:
    def test_in_process_budget(self):
        plan = FaultPlan(specs=parse_specs("mine.worker:raise:times=2"))
        spec = plan.specs[0]
        assert plan.claim(spec)
        assert plan.claim(spec)
        assert not plan.claim(spec)

    def test_unlimited_budget(self):
        plan = FaultPlan(specs=parse_specs("mine.worker:raise"))
        assert all(plan.claim(plan.specs[0]) for __ in range(10))

    def test_budget_is_shared_across_plans(self, tmp_path):
        # Two plans over one state directory model two processes: the
        # total number of successful claims is the spec's budget.
        state = str(tmp_path)
        a = FaultPlan(specs=parse_specs("mine.worker:kill:times=3"), state_dir=state)
        b = FaultPlan(specs=parse_specs("mine.worker:kill:times=3"), state_dir=state)
        claims = [a.claim(a.specs[0]), b.claim(b.specs[0]), a.claim(a.specs[0])]
        assert all(claims)
        assert not a.claim(a.specs[0])
        assert not b.claim(b.specs[0])
        assert len(os.listdir(state)) == 3  # one marker per firing

    def test_install_creates_state_dir_for_bounded_specs(self):
        plan = faultinject.install("mine.worker:kill:times=1")
        assert plan.state_dir is not None
        assert os.path.isdir(plan.state_dir)
        unbounded = faultinject.install("mine.worker:raise")
        assert unbounded.state_dir is None


class TestActions:
    def test_raise_action(self):
        faultinject.install("mine.worker:raise")
        with pytest.raises(InjectedFault):
            faultinject.fire("mine.worker")

    def test_flake_action_is_transient(self):
        faultinject.install("mine.worker:flake")
        with pytest.raises(TransientIOError):
            faultinject.fire("mine.worker")

    def test_delay_action_sleeps(self):
        faultinject.install("mine.worker:delay:seconds=0.05")
        started = time.perf_counter()
        faultinject.fire("mine.worker")
        assert time.perf_counter() - started >= 0.04

    def test_truncate_action_halves_by_default(self, tmp_path):
        victim = tmp_path / "checkpoint.bin"
        victim.write_bytes(b"x" * 100)
        faultinject.install("checkpoint.write:truncate:times=1")
        faultinject.fire("checkpoint.write", path=str(victim))
        assert victim.stat().st_size == 50
        faultinject.fire("checkpoint.write", path=str(victim))  # budget spent
        assert victim.stat().st_size == 50

    def test_truncate_action_drops_exact_bytes(self, tmp_path):
        victim = tmp_path / "checkpoint.bin"
        victim.write_bytes(b"x" * 100)
        faultinject.install("checkpoint.write:truncate:bytes=99")
        faultinject.fire("checkpoint.write", path=str(victim))
        assert victim.stat().st_size == 1

    def test_firings_are_counted(self):
        obs.metrics.reset()
        faultinject.install("mine.worker:flake:times=1")
        with pytest.raises(TransientIOError):
            faultinject.fire("mine.worker")
        faultinject.fire("mine.worker")  # budget spent; must not count again
        assert obs.metrics.get("faultinject.fired") == 1
        assert obs.metrics.get("faultinject.fired.mine.worker.flake") == 1


class TestPlanLifecycle:
    def test_no_plan_fire_is_noop(self):
        faultinject.fire("anything", rank=1)

    def test_reset_disarms(self):
        faultinject.install("mine.worker:raise")
        faultinject.reset()
        faultinject.fire("mine.worker")

    def test_environment_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "mine.worker:raise")
        faultinject.reset()  # force the lazy env read
        with pytest.raises(InjectedFault):
            faultinject.fire("mine.worker")

    def test_exported_and_adopt_roundtrip(self, tmp_path):
        faultinject.install("mine.worker:raise:times=1", state_dir=str(tmp_path))
        token = faultinject.exported()
        assert token == ("mine.worker:raise:times=1", str(tmp_path))
        faultinject.reset()
        faultinject.adopt(token)
        with pytest.raises(InjectedFault):
            faultinject.fire("mine.worker")
        faultinject.fire("mine.worker")  # the adopted plan kept the shared budget

    def test_exported_none_without_plan(self):
        assert faultinject.exported() is None

    def test_adopt_none_clears_stale_plan(self, monkeypatch):
        # A cached worker holding an old plan must disarm when the parent
        # ships no faults — even if REPRO_FAULTS is still in its env.
        monkeypatch.setenv("REPRO_FAULTS", "mine.worker:raise")
        faultinject.install("mine.worker:raise")
        faultinject.adopt(None)
        faultinject.fire("mine.worker")  # no exception, and no env re-read
