"""Tests for the CFP-array and the CFP-tree -> CFP-array conversion."""

import pytest
from hypothesis import given, settings

from repro.compress import varint
from repro.core.cfp_array import CfpArray
from repro.core.conversion import convert, cumulative_counts
from repro.core.ternary import TernaryCfpTree
from repro.errors import TreeError
from repro.fptree import FPTree
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy, random_database


def build(database, min_support=2, **options):
    table, transactions = prepare_transactions(database, min_support)
    tree = TernaryCfpTree.from_rank_transactions(transactions, len(table), **options)
    fp = FPTree.from_rank_transactions(transactions, len(table))
    return table, tree, fp, convert(tree)


class TestConversionStructure:
    def test_empty_tree(self):
        array = convert(TernaryCfpTree(3))
        assert array.node_count == 0
        assert len(array.buffer) == 0
        assert list(array.active_ranks_descending()) == []

    def test_node_counts_match(self, small_db):
        __, tree, fp, array = build(small_db)
        assert array.node_count == tree.node_count == fp.node_count

    def test_paper_figure5_shape(self):
        # Figure 5's FP-tree: items 2, 3 with three subarrays' worth of
        # structure; verify subarray clustering and the no-parent marker.
        tree = TernaryCfpTree(3)
        tree.insert([1, 2, 3], count=3)
        tree.insert([1, 2], count=2)
        tree.insert([2, 3], count=4)
        tree.insert([3], count=1)
        array = convert(tree)
        # Subarrays: rank1 -> 1 node, rank2 -> 2 nodes, rank3 -> 3 nodes.
        assert len(list(array.iter_subarray(1))) == 1
        assert len(list(array.iter_subarray(2))) == 2
        assert len(list(array.iter_subarray(3))) == 3
        # A root child has delta_item == its rank.
        __, delta, __, count = next(iter(array.iter_subarray(1)))
        assert delta == 1
        assert count == 5

    def test_counts_are_cumulative(self):
        tree = TernaryCfpTree(2)
        tree.insert([1], count=3)
        tree.insert([1, 2], count=2)
        array = convert(tree)
        __, __, __, count1 = next(iter(array.iter_subarray(1)))
        assert count1 == 5  # 3 + 2: cumulative, not the pcount 3.

    def test_cumulative_counts_helper(self):
        tree = TernaryCfpTree(3)
        tree.insert([1, 2])
        tree.insert([1, 2, 3])
        tree.insert([1])
        counts = cumulative_counts(tree)
        # DFS preorder: rank1 (count 3), rank2 (count 2), rank3 (count 1).
        assert counts == [3, 2, 1]


class TestBackwardTraversal:
    def test_paths_match_fp_tree(self, small_db):
        __, tree, fp, array = build(small_db)
        for rank in range(1, array.n_ranks + 1):
            fp_paths = sorted(
                (tuple(p), c) for p, c in fp.prefix_paths(rank)
            )
            array_paths = sorted(
                (tuple(array.path_ranks(rank, local)), count)
                for local, __, __, count in array.iter_subarray(rank)
            )
            assert array_paths == fp_paths

    @settings(max_examples=40, deadline=None)
    @given(db_strategy)
    def test_paths_match_property(self, database):
        __, tree, fp, array = build(database, 1)
        for rank in range(1, array.n_ranks + 1):
            fp_paths = sorted((tuple(p), c) for p, c in fp.prefix_paths(rank))
            array_paths = sorted(
                (tuple(array.path_ranks(rank, local)), count)
                for local, __, __, count in array.iter_subarray(rank)
            )
            assert array_paths == fp_paths

    def test_rank_support_matches(self, small_db):
        table, tree, fp, array = build(small_db)
        for rank in range(1, array.n_ranks + 1):
            assert array.rank_support(rank) == fp.rank_count(rank)
            assert array.rank_support(rank) == table.rank_supports[rank]


class TestItemIndex:
    def test_starts_monotonic(self, small_db):
        __, __, __, array = build(small_db)
        assert array.starts[1] == 0
        for rank in range(1, array.n_ranks + 1):
            assert array.starts[rank] <= array.starts[rank + 1]
        assert array.starts[-1] == len(array.buffer)

    def test_item_of_position(self, small_db):
        __, __, __, array = build(small_db)
        for rank in range(1, array.n_ranks + 1):
            for local, __, __, __ in array.iter_subarray(rank):
                assert array.item_of_position(array.starts[rank] + local) == rank

    def test_item_of_position_bounds(self, small_db):
        __, __, __, array = build(small_db)
        with pytest.raises(TreeError):
            array.item_of_position(len(array.buffer))
        with pytest.raises(TreeError):
            array.item_of_position(-1)

    def test_constructor_validation(self):
        with pytest.raises(TreeError):
            CfpArray(2, bytearray(4), [0, 0, 4])  # wrong index length
        with pytest.raises(TreeError):
            CfpArray(1, bytearray(4), [0, 0, 3])  # does not span buffer


class TestNodeAt:
    def test_node_at_decodes_triple(self):
        tree = TernaryCfpTree(2)
        tree.insert([1, 2], count=7)
        array = convert(tree)
        local, delta, dpos, count = next(iter(array.iter_subarray(2)))
        assert array.node_at(2, local) == (delta, dpos, count)

    def test_node_at_validates(self, small_db):
        __, __, __, array = build(small_db)
        with pytest.raises(TreeError):
            array.node_at(1, 10_000)
        with pytest.raises(TreeError):
            array.node_at(0, 0)


class TestDposEncoding:
    def test_negative_dpos_roundtrip(self):
        # Construct a shape where a child's subarray is shorter than the
        # parent's at link time: many rank-1 and rank-2 nodes first, then a
        # rank-3 child of a late rank-2 parent.
        tree = TernaryCfpTree(3)
        tree.insert([2])
        tree.insert([1, 2])
        tree.insert([1, 2, 3])
        array = convert(tree)
        # Whatever the sign of dpos, backward traversal must find parents.
        for rank in (2, 3):
            for local, __, __, count in array.iter_subarray(rank):
                path = array.path_ranks(rank, local)
                assert all(r < rank for r in path)

    @given(db_strategy)
    def test_dpos_zigzag_consistency(self, database):
        __, __, __, array = build(database, 1)
        buf = array.buffer
        for rank in range(1, array.n_ranks + 1):
            for local, delta, dpos, __ in array.iter_subarray(rank):
                offset = array.starts[rank] + local
                __, offset = varint.decode_from(buf, offset)
                raw, __ = varint.decode_from(buf, offset)
                assert varint.unzigzag(raw) == dpos


class TestMemoryAccounting:
    def test_average_node_size_under_baseline(self):
        db = random_database(1, n_transactions=300, n_items=40, max_length=15)
        __, __, __, array = build(db)
        assert 3.0 <= array.average_node_size() < 40

    def test_memory_includes_index(self, small_db):
        __, __, __, array = build(small_db)
        assert array.memory_bytes == len(array.buffer) + (array.n_ranks + 1) * 5

    def test_empty_average(self):
        assert convert(TernaryCfpTree(1)).average_node_size() == 0.0


class TestConversionConfigs:
    @settings(max_examples=30, deadline=None)
    @given(db_strategy)
    def test_conversion_independent_of_tree_layout(self, database):
        """The CFP-array must not depend on chains/embedding choices."""
        table, transactions = prepare_transactions(database, 1)
        arrays = []
        for options in ({}, {"enable_chains": False}, {"enable_embedding": False}):
            tree = TernaryCfpTree.from_rank_transactions(
                transactions, len(table), **options
            )
            arrays.append(convert(tree))
        reference = _canonical(arrays[0])
        for array in arrays[1:]:
            assert _canonical(array) == reference


def _canonical(array):
    """Order-insensitive content: per rank, multiset of (path, count)."""
    content = {}
    for rank in range(1, array.n_ranks + 1):
        content[rank] = sorted(
            (tuple(array.path_ranks(rank, local)), count)
            for local, __, __, count in array.iter_subarray(rank)
        )
    return content


class TestSubarrayCache:
    """LRU semantics and counters of the decoded-subarray cache."""

    def _cache(self, budget=100):
        from repro.core.cfp_array import _SubarrayCache

        return _SubarrayCache(budget)

    def test_reput_refreshes_recency(self):
        # Regression: put() on an already-cached rank used to return
        # without touching LRU order, leaving a hot entry first in line
        # for eviction.
        cache = self._cache(budget=100)
        cache.put(1, ["a"], 40)
        cache.put(2, ["b"], 40)
        cache.put(1, ["a"], 40)  # re-put: rank 1 is in active use
        cache.put(3, ["c"], 40)  # must evict rank 2, not rank 1
        assert cache.get(1) == ["a"]
        assert cache.get(2) is None
        assert cache.get(3) == ["c"]
        assert cache.evictions == 1

    def test_eviction_counter(self):
        cache = self._cache(budget=100)
        for rank in range(1, 5):
            cache.put(rank, [], 40)
        assert cache.evictions == 2  # 4 x 40 into a 100-byte budget

    def test_oversized_entry_rejected_and_counted(self):
        cache = self._cache(budget=100)
        cache.put(1, ["big"], 101)
        assert cache.get(1) is None
        assert cache.rejected == 1
        assert cache.evictions == 0  # nothing was evicted to make room

    def test_counts_snapshot(self):
        cache = self._cache(budget=100)
        cache.put(1, ["a"], 40)
        cache.get(1)
        cache.get(2)
        assert cache.counts() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "rejected": 0,
        }

    def test_array_counts_zero_without_cache(self, small_db):
        __, __, __, array = build(small_db)
        assert set(array.cache_counts()) == {
            "hits",
            "misses",
            "evictions",
            "rejected",
        }
        assert all(v == 0 for v in array.cache_counts().values())

    def test_publish_cache_metrics_delta(self, small_db):
        from repro.obs.registry import MetricsRegistry

        __, __, __, array = build(small_db)
        array.set_cache_budget(1 << 16)
        for rank in array.active_ranks_descending():
            list(array.prefix_paths(rank))
            list(array.prefix_paths(rank))
        registry = MetricsRegistry()
        array.publish_cache_metrics(registry)
        hits = registry.get("subarray_cache.hits")
        assert hits > 0
        # Publishing again with the current counts as baseline is a no-op:
        # that is what prevents repeated mines from double-counting.
        array.publish_cache_metrics(registry, baseline=array.cache_counts())
        assert registry.get("subarray_cache.hits") == hits


class TestDecodedByteCharging:
    """The cache must charge decoded column bytes, not encoded varint bytes.

    Regression: entries used to be charged at the size of their encoded
    subarray chunk. Decoding expands varint triples into four fixed-width
    columns (~6-8x), so a "1 MiB" cache really held several MiB of
    decoded columns — precisely the memory the budget was meant to bound.
    """

    def _array(self, small_db):
        __, __, __, array = build(small_db, min_support=1)
        return array

    def test_decoded_bytes_exceed_encoded(self, small_db):
        array = self._array(small_db)
        for rank in array.active_ranks_descending():
            encoded = array.starts[rank + 1] - array.starts[rank]
            entry = array.subarray_columns(rank)
            assert entry.decoded_bytes > encoded

    def test_cache_charges_decoded_bytes(self, small_db):
        array = self._array(small_db)
        array.set_cache_budget(1 << 20)
        decoded_total = 0
        for rank in array.active_ranks_descending():
            decoded_total += array.subarray_columns(rank).decoded_bytes
        assert array._cache.used_bytes == decoded_total

    def test_eviction_pressure_under_decoded_budget(self, small_db):
        array = self._array(small_db)
        ranks = list(array.active_ranks_descending())
        encoded_total = sum(
            array.starts[rank + 1] - array.starts[rank] for rank in ranks
        )
        decoded_total = sum(
            array.subarray_columns(rank).decoded_bytes for rank in ranks
        )
        assert decoded_total > encoded_total
        # A budget that would hold every *encoded* chunk but not every
        # *decoded* one: under the old accounting this cache never
        # evicted; under decoded accounting it must feel pressure.
        budget = (encoded_total + decoded_total) // 2
        array.set_cache_budget(budget)
        for rank in ranks:
            array.subarray_columns(rank)
        cache = array._cache
        counts = array.cache_counts()
        assert counts["evictions"] + counts["rejected"] > 0
        assert cache.used_bytes <= budget

    def test_results_unchanged_under_pressure(self, small_db):
        reference = self._array(small_db)
        squeezed = self._array(small_db)
        ranks = list(reference.active_ranks_descending())
        decoded_max = max(
            reference.subarray_columns(rank).decoded_bytes for rank in ranks
        )
        squeezed.set_cache_budget(decoded_max)  # one entry at a time
        for rank in ranks:
            assert squeezed.prefix_paths(rank) == reference.prefix_paths(rank)


class TestSinglePath:
    """Array-level single-path detection mirrors the tree's (§3.4)."""

    def _array_for(self, transactions, n_ranks):
        tree = TernaryCfpTree(n_ranks)
        for ranks in transactions:
            tree.insert(ranks)
        return tree, convert(tree)

    def test_single_path_matches_tree(self):
        tree, array = self._array_for([[1, 2, 3], [1, 2, 3], [1, 2]], 3)
        assert array.single_path() == tree.single_path()
        assert array.single_path() == [(1, 3), (2, 3), (3, 2)]

    def test_path_with_rank_gaps(self):
        tree, array = self._array_for([[2, 5], [2, 5, 7]], 8)
        assert array.single_path() == tree.single_path()
        assert array.single_path() == [(2, 2), (5, 2), (7, 1)]

    def test_branching_returns_none(self):
        __, array = self._array_for([[1, 2], [1, 3]], 3)
        assert array.single_path() is None

    def test_two_roots_return_none(self):
        __, array = self._array_for([[1], [2]], 2)
        assert array.single_path() is None

    def test_disconnected_single_nodes_return_none(self):
        # One triple per rank but rank 3's parent is rank 1, not rank 2 —
        # the nodes do not chain into one path.
        __, array = self._array_for([[1, 2], [1, 3]], 3)
        assert array.single_path() is None

    def test_empty_array_is_trivial_path(self):
        __, array = self._array_for([], 3)
        assert array.single_path() == []

    @settings(max_examples=40, deadline=None)
    @given(db_strategy)
    def test_property_matches_tree(self, database):
        table, transactions = prepare_transactions(database, 1)
        tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
        array = convert(tree)
        assert array.single_path() == tree.single_path()


class TestDecodeSubarrayAliasing:
    """Regression: handing out the cached entry itself let callers poison it."""

    def _cached_array(self, small_db):
        __, __, __, array = build(small_db, min_support=1)
        array.set_cache_budget(1 << 16)
        return array

    def test_rows_are_immutable(self, small_db):
        array = self._cached_array(small_db)
        rank = next(iter(array.active_ranks_descending()))
        rows = array.decode_subarray(rank)
        assert isinstance(rows, tuple)
        with pytest.raises(TypeError):
            rows[0] = (0, 0, 0, 0)  # type: ignore[index]

    def test_mutation_attempt_cannot_corrupt_cache(self, small_db):
        array = self._cached_array(small_db)
        pristine = self._cached_array(small_db)
        for rank in array.active_ranks_descending():
            rows = array.decode_subarray(rank)
            try:
                rows[0] = (99, 99, 99, 99)  # type: ignore[index]
            except TypeError:
                pass
            with pytest.raises((TypeError, AttributeError)):
                rows.sort()  # type: ignore[attr-defined]
            # Later hits — including the columnar view underneath — are intact.
            assert array.decode_subarray(rank) == pristine.decode_subarray(rank)
            assert array.prefix_paths(rank) == pristine.prefix_paths(rank)

    def test_cached_hits_share_the_decoded_entry(self, small_db):
        # The fix must not undo the cache: hits still avoid re-decoding.
        array = self._cached_array(small_db)
        rank = next(iter(array.active_ranks_descending()))
        first = array.subarray_columns(rank)
        assert array.subarray_columns(rank) is first
        assert array.cache_counts()["hits"] >= 1


class TestNodeCountCacheNeutral:
    """Regression: the lazy node_count fallback must not charge the LRU cache."""

    def _lazy_array(self, small_db, budget=1 << 16):
        __, __, __, built = build(small_db, min_support=1)
        lazy = CfpArray(built.n_ranks, built.buffer, built.starts)
        if budget:
            lazy.set_cache_budget(budget)
        return built, lazy

    def test_lazy_count_matches_converter(self, small_db):
        built, lazy = self._lazy_array(small_db, budget=0)
        assert lazy.node_count == built.node_count

    def test_lazy_count_leaves_cache_counters_untouched(self, small_db):
        __, lazy = self._lazy_array(small_db)
        before = lazy.cache_counts()
        assert lazy.node_count > 0
        assert lazy.cache_counts() == before

    def test_lazy_count_does_not_evict_hot_entries(self, small_db):
        built, lazy = self._lazy_array(small_db)
        hot = next(iter(lazy.active_ranks_descending()))
        entry = lazy.subarray_columns(hot)  # warm the working set
        assert lazy.node_count == built.node_count
        assert lazy.subarray_columns(hot) is entry  # still cached, not evicted
