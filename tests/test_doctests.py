"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.compress.varint
import repro.compress.zero_suppression

MODULES = [
    repro.compress.varint,
    repro.compress.zero_suppression,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


def test_lazy_exports_resolve():
    import repro

    for name in repro.__all__:
        if name.startswith("__"):
            continue
        assert getattr(repro, name) is not None
