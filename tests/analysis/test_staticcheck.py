"""Self-test for the whole-program static analyzer.

Three layers of assurance:

* the real tree is clean (zero findings — the analyzer gates CI, so
  this is the same bar `python -m repro.analysis.staticcheck` enforces);
* every pass fires on the seeded-violation corpus under
  ``tests/analysis/corpus/mini/`` — at least one finding per rule
  family, with the exact calibrated finding set pinned;
* the shared machinery behaves: suppression comments, JSON output,
  selectors, exit codes, and parity between the ``lint_invariants``
  shim and the ``invariants`` pass.
"""

from __future__ import annotations

import json
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis.staticcheck import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    Finding,
    default_paths,
    default_repo_root,
    dump_registries,
    findings_to_json,
    run,
)
from repro.analysis.staticcheck.findings import (
    filter_suppressed,
    suppressed_codes,
)
from repro.analysis.staticcheck.passes import all_passes
from repro.analysis.staticcheck.passes.invariants import (
    check_module,
    lint_paths,
)
from repro.analysis.staticcheck.runner import select_passes

REPO_ROOT = default_repo_root()
CORPUS_ROOT = Path(__file__).parent / "corpus" / "mini"
CORPUS_SRC = CORPUS_ROOT / "src" / "repro"


@pytest.fixture(scope="module")
def real_findings():
    return run(default_paths(REPO_ROOT), REPO_ROOT)


@pytest.fixture(scope="module")
def corpus_findings():
    return run([CORPUS_SRC], CORPUS_ROOT)


def _cli(*args, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.staticcheck", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestCleanTree:
    def test_zero_findings(self, real_findings):
        assert real_findings == []

    def test_cli_exits_clean(self):
        result = _cli()
        assert result.returncode == EXIT_CLEAN, result.stdout + result.stderr
        assert result.stdout == ""


class TestCorpus:
    """The seeded mini-repo must trip every pass."""

    EXPECTED = {
        # (path, line, code) for all 21 seeded violations.
        ("docs/guide.md", 4, "DRIFT001"),
        ("docs/guide.md", 7, "DRIFT002"),
        ("docs/guide.md", 11, "DRIFT003"),
        ("repro/badcode.py", 6, "INV003"),
        ("repro/badcode.py", 12, "INV002"),
        ("repro/badcode.py", 16, "INV001"),
        ("repro/badcode.py", 22, "INV004"),
        ("repro/badcode.py", 27, "INV004"),
        ("repro/core/cfp_growth.py", 14, "INV008"),  # for-loop form
        ("repro/core/cfp_growth.py", 20, "INV008"),  # comprehension form
        ("repro/faultinject.py", 8, "DRIFT001"),  # dead.site never fired
        ("repro/faultinject.py", 20, "DRIFT001"),  # typo.site x3
        ("repro/metricsmod.py", 22, "DRIFT002"),
        ("repro/metricsmod.py", 28, "DRIFT003"),
        ("repro/workers.py", 19, "EFF001"),  # transitive, via _helper
        ("repro/workers.py", 24, "EFF001"),
        ("repro/workers.py", 26, "EFF002"),
        ("repro/workers.py", 27, "EFF003"),
        ("repro/workers.py", 28, "EFF004"),
    }

    def test_exact_finding_set(self, corpus_findings):
        got = {(f.path, f.line, f.code) for f in corpus_findings}
        assert got == self.EXPECTED

    def test_every_rule_family_fires(self, corpus_findings):
        codes = Counter(f.code for f in corpus_findings)
        for code in (
            "INV001",
            "INV002",
            "INV003",
            "INV004",
            "INV008",
            "EFF001",
            "EFF002",
            "EFF003",
            "EFF004",
            "DRIFT001",
            "DRIFT002",
            "DRIFT003",
        ):
            assert codes[code] >= 1, f"{code} never fired on the corpus"
        # typo.site trips all three DRIFT001 directions on one line.
        assert codes["DRIFT001"] == 5
        assert codes["EFF001"] == 2  # one direct, one transitive

    def test_worker_findings_name_their_entry(self, corpus_findings):
        effects = [f for f in corpus_findings if f.code.startswith("EFF")]
        assert effects
        for finding in effects:
            assert "worker entry 'repro.workers._worker_task'" in finding.message

    def test_transitive_reachability_is_reported(self, corpus_findings):
        (helper,) = [
            f
            for f in corpus_findings
            if f.code == "EFF001" and "via 'repro.workers._helper'" in f.message
        ]
        assert "_CACHE" in helper.message

    def test_suppress_exception_is_inv004(self, corpus_findings):
        messages = [
            f.message for f in corpus_findings if f.code == "INV004"
        ]
        assert any("suppress(Exception)" in m for m in messages)

    def test_doc_side_findings_anchor_to_the_doc(self, corpus_findings):
        doc_codes = {
            f.code for f in corpus_findings if f.path == "docs/guide.md"
        }
        assert doc_codes == {"DRIFT001", "DRIFT002", "DRIFT003"}

    def test_registry_dump(self):
        payload = json.loads(dump_registries([CORPUS_SRC], CORPUS_ROOT))
        assert payload["declared_sites"] == ["dead.site", "good.site"]
        assert payload["fault_sites"] == ["good.site", "typo.site"]
        assert payload["metric_counters"] == [
            "mini.documented",
            "mini.undocumented",
        ]
        assert payload["env_vars"] == ["REPRO_MINI_SECRET", "REPRO_MINI_USED"]


class TestSelectors:
    def test_select_by_pass_name(self, corpus_findings):
        findings = run([CORPUS_SRC], CORPUS_ROOT, ["invariants"])
        assert findings == [
            f for f in corpus_findings if f.code.startswith("INV")
        ]

    def test_select_by_rule_code(self):
        findings = run([CORPUS_SRC], CORPUS_ROOT, ["EFF002"])
        # Code selectors pick the owning pass (worker-effect).
        assert {f.code for f in findings} == {
            "EFF001",
            "EFF002",
            "EFF003",
            "EFF004",
        }

    def test_unknown_selector_rejected(self):
        with pytest.raises(ValueError, match="unknown pass selector"):
            select_passes(["no-such-pass"])

    def test_every_pass_is_selectable_by_name(self):
        for candidate in all_passes():
            selected = select_passes([candidate.name])
            assert [p.name for p in selected] == [candidate.name]


class TestSuppression:
    """Satellite coverage for the `# lint: ignore[...]` machinery."""

    def _check(self, source: str) -> list[Finding]:
        import ast

        return check_module(
            "repro/example.py", ast.parse(source), source.splitlines()
        )

    def test_matching_code_suppresses(self):
        src = "def f(x=[]):  # lint: ignore[INV003]\n    return x\n"
        assert self._check(src) == []

    def test_multiple_codes_in_one_marker(self):
        src = (
            "def f(x=[], y={}):"
            "  # lint: ignore[INV003, INV999] both on this line\n"
            "    return x, y\n"
        )
        assert self._check(src) == []

    def test_wrong_code_does_not_suppress(self):
        src = "def f(x=[]):  # lint: ignore[INV004]\n    return x\n"
        (finding,) = self._check(src)
        assert finding.code == "INV003"

    def test_trailing_explanation_after_bracket(self):
        src = (
            "def f(x=[]):  # lint: ignore[INV003] - shared scratch, "
            "documented\n    return x\n"
        )
        assert self._check(src) == []

    def test_marker_must_be_on_the_finding_line(self):
        src = "# lint: ignore[INV003]\ndef f(x=[]):\n    return x\n"
        (finding,) = self._check(src)
        assert finding.code == "INV003"
        assert finding.line == 2

    def test_multiple_markers_accumulate(self):
        line = "x = 1  # lint: ignore[EFF001] then lint: ignore[INV003]"
        assert suppressed_codes(line) == frozenset({"EFF001", "INV003"})

    def test_filter_respects_line_bounds(self):
        phantom = Finding("repro/example.py", 99, "INV003", "out of range")
        assert filter_suppressed([phantom], ["x = 1"]) == [phantom]


class TestShimParity:
    """The lint_invariants shim and the invariants pass agree exactly."""

    def test_corpus_parity(self, corpus_findings):
        via_pass = sorted(
            (f.line, f.code, f.message)
            for f in corpus_findings
            if f.code.startswith("INV") and f.path.endswith("badcode.py")
        )
        via_shim = sorted(
            (f.line, f.code, f.message)
            for f in lint_paths([CORPUS_SRC])
            if f.path.endswith("badcode.py")
        )
        assert via_shim == via_pass

    def test_real_tree_parity(self, real_findings):
        assert [f for f in real_findings if f.code.startswith("INV")] == []
        assert lint_paths(default_paths(REPO_ROOT)) == []

    def test_shim_cli_flags_corpus(self):
        result = subprocess.run(
            [sys.executable, "tools/lint_invariants.py", str(CORPUS_SRC)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == EXIT_FINDINGS
        assert "INV003" in result.stdout
        assert "invariant violation(s)" in result.stderr


class TestCli:
    def test_json_output_shape(self):
        result = _cli(
            "--root", str(CORPUS_ROOT), str(CORPUS_SRC), "--json"
        )
        assert result.returncode == EXIT_FINDINGS
        payload = json.loads(result.stdout)
        assert len(payload) == 21
        assert all(
            set(entry) == {"path", "line", "code", "message"}
            for entry in payload
        )
        # Deterministic: sorted by (path, line, code, message).
        keys = [
            (e["path"], e["line"], e["code"], e["message"]) for e in payload
        ]
        assert keys == sorted(keys)

    def test_findings_to_json_round_trips(self, corpus_findings):
        payload = json.loads(findings_to_json(corpus_findings))
        assert len(payload) == len(corpus_findings)

    def test_list_passes(self):
        result = _cli("--list-passes")
        assert result.returncode == EXIT_CLEAN
        for name in (
            "invariants",
            "worker-effect",
            "fault-site-drift",
            "metric-drift",
            "env-var-drift",
        ):
            assert name in result.stdout

    def test_unknown_selector_exits_error(self):
        result = _cli("--select", "bogus")
        assert result.returncode == EXIT_ERROR
        assert "unknown pass selector" in result.stderr

    def test_unparsable_source_exits_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        result = _cli("--root", str(tmp_path), str(bad))
        assert result.returncode == EXIT_ERROR
        assert "cannot parse" in result.stderr

    def test_repro_check_static_clean(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "check", "--static"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == EXIT_CLEAN, result.stdout + result.stderr
