"""Unit tests for the store-file fsck and the buffer-pool auditor."""

from __future__ import annotations

import json
import random
import struct

import pytest

from repro.analysis.storecheck import check_bufferpool, check_file
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.storage.bufferpool import BufferPool
from repro.storage.cfp_store import (
    pages_needed,
    save_cfp_array,
    save_cfp_tree,
)
from repro.storage.pagefile import PAGE_SIZE, PageFile


@pytest.fixture
def tree():
    rng = random.Random(23)
    built = TernaryCfpTree(n_ranks=15)
    for __ in range(120):
        built.insert(sorted(rng.sample(range(1, 16), rng.randint(1, 7))))
    return built


@pytest.fixture
def array_path(tree, tmp_path):
    path = tmp_path / "array.cfpa"
    save_cfp_array(convert(tree), path)
    return path


@pytest.fixture
def tree_path(tree, tmp_path):
    path = tmp_path / "tree.cfpt"
    save_cfp_tree(tree, path)
    return path


def flip_byte(path, offset: int, mask: int = 0xFF) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        value = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([value ^ mask]))


class TestIntactFiles:
    def test_array_file_clean(self, array_path):
        report = check_file(array_path)
        assert report.ok
        assert report.kind == "cfp-array"
        assert report.version == 2
        assert report.checksummed
        assert report.array_report is not None and report.array_report.ok

    def test_tree_file_clean(self, tree_path):
        report = check_file(tree_path)
        assert report.ok
        assert report.kind == "cfp-tree"
        assert report.tree_report is not None and report.tree_report.ok

    def test_shallow_skips_payload(self, array_path):
        report = check_file(array_path, deep=False)
        assert report.ok
        assert report.array_report is None


class TestFileLevelCorruption:
    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            check_file(tmp_path / "nope.cfpa")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.cfpa"
        path.write_bytes(b"")
        assert check_file(path).codes() == {"STO001"}

    def test_partial_page(self, array_path):
        with open(array_path, "ab") as handle:
            handle.write(b"x" * 100)
        assert check_file(array_path).codes() == {"STO001"}

    def test_unknown_magic(self, array_path):
        flip_byte(array_path, 0)
        assert check_file(array_path).codes() == {"STO002"}

    def test_unsupported_version(self, array_path):
        with open(array_path, "r+b") as handle:
            handle.seek(4)
            handle.write(struct.pack("<I", 99))
        assert check_file(array_path).codes() == {"STO003"}

    def test_header_exceeds_file(self, array_path):
        # Absurd n_ranks implies more header pages than the file holds.
        with open(array_path, "r+b") as handle:
            handle.seek(12)
            handle.write(struct.pack("<Q", 1 << 40))
        assert "STO004" in check_file(array_path).codes()

    def test_truncated_file(self, array_path):
        size = array_path.stat().st_size
        with open(array_path, "r+b") as handle:
            handle.truncate(size - PAGE_SIZE)
        assert "STO005" in check_file(array_path).codes()

    def test_checksum_mismatch_localized(self, array_path):
        flip_byte(array_path, PAGE_SIZE + 7)  # first payload page
        report = check_file(array_path, deep=False)
        sto010 = [d for d in report.diagnostics if d.code == "STO010"]
        assert len(sto010) == 1
        assert sto010[0].location == "page 1"


class TestTreeCheckpointCorruption:
    def test_metadata_not_json(self, tree_path):
        flip_byte(tree_path, 16)  # first metadata byte
        assert "STO012" in check_file(tree_path).codes()

    def test_metadata_missing_field(self, tree_path):
        with PageFile.open_readonly(tree_path) as pagefile:
            first = pagefile.read_page(0)
        version, meta_len = struct.unpack_from("<IQ", first, 4)
        meta = json.loads(first[16 : 16 + meta_len].decode("ascii"))
        del meta["root_slot"]
        _rewrite_meta(tree_path, meta, pad_to=meta_len)
        assert "STO013" in check_file(tree_path).codes()

    def test_metadata_next_free_out_of_range(self, tree_path):
        with PageFile.open_readonly(tree_path) as pagefile:
            first = pagefile.read_page(0)
        __, meta_len = struct.unpack_from("<IQ", first, 4)
        meta = json.loads(first[16 : 16 + meta_len].decode("ascii"))
        meta["capacity"] = 16  # shrinks the JSON; next_free now exceeds it
        _rewrite_meta(tree_path, meta, pad_to=meta_len)
        assert "STO013" in check_file(tree_path).codes()

    def test_arena_corruption_reported_as_tree_issue(self, tree_path):
        with PageFile.open_readonly(tree_path) as pagefile:
            first = pagefile.read_page(0)
        __, meta_len = struct.unpack_from("<IQ", first, 4)
        meta = json.loads(first[16 : 16 + meta_len].decode("ascii"))
        # Flip bytes in the middle of the arena payload.
        for offset in range(40, 60):
            flip_byte(tree_path, PAGE_SIZE + offset)
        report = check_file(tree_path)
        assert not report.ok
        assert report.codes() & {"TRE001", "STO010", "STO020"}
        assert "STO010" in report.codes()  # checksums always notice


def _rewrite_meta(path, meta: dict, pad_to: int) -> None:
    """Replace the metadata JSON in page 0, keeping its byte length."""
    blob = json.dumps(meta).encode("ascii")
    assert len(blob) <= pad_to, "test metadata must not outgrow the original"
    blob = blob + b" " * (pad_to - len(blob))  # JSON tolerates trailing spaces
    with open(path, "r+b") as handle:
        handle.seek(16)
        handle.write(blob)
    # Page 0 changed, so fix its checksum to isolate the metadata finding.
    _refresh_checksum(path, page_no=0)


def _refresh_checksum(path, page_no: int) -> None:
    from repro.storage.cfp_store import page_checksum

    with open(path, "r+b") as handle:
        handle.seek(page_no * PAGE_SIZE)
        page = handle.read(PAGE_SIZE)
        size = handle.seek(0, 2)
        content_pages = _content_pages_of(path, size)
        handle.seek(content_pages * PAGE_SIZE + page_no * 4)
        handle.write(struct.pack("<I", page_checksum(page)))


def _content_pages_of(path, size: int) -> int:
    """Content pages for a file whose trailer occupies the final page(s)."""
    total = size // PAGE_SIZE
    # total = content + ceil(content*4/PAGE_SIZE); search the small range.
    for content in range(total, 0, -1):
        if content + pages_needed(content * 4) == total:
            return content
    raise AssertionError("cannot derive content page count")


class TestBufferPool:
    def test_clean_pool(self, array_path):
        with PageFile.open_readonly(array_path) as pagefile:
            pool = BufferPool(pagefile, 2)
            pool.get_page(0)
            pool.get_page(1)
            pool.get_page(2)  # evicts page 0
            sink = check_bufferpool(pool)
            assert sink.ok

    def test_pin_leak_detected(self, array_path):
        with PageFile.open_readonly(array_path) as pagefile:
            pool = BufferPool(pagefile, 2)
            pool.pin(0)
            pool._frames.pop(0)  # simulate a lost frame under a pin
            sink = check_bufferpool(pool)
            assert "BUF002" in sink.codes()

    def test_stats_drift_detected(self, array_path):
        with PageFile.open_readonly(array_path) as pagefile:
            pool = BufferPool(pagefile, 2)
            pool.get_page(0)
            pool.stats.faults += 3  # simulate drifted accounting
            sink = check_bufferpool(pool)
            assert "BUF003" in sink.codes()

    def test_overfull_pool_detected(self, array_path):
        with PageFile.open_readonly(array_path) as pagefile:
            pool = BufferPool(pagefile, 1)
            pool.get_page(0)
            pool._frames[99] = b"\x00" * PAGE_SIZE  # bypass eviction
            sink = check_bufferpool(pool)
            assert "BUF001" in sink.codes()
            assert "BUF004" in sink.codes()
            assert "BUF003" in sink.codes()
