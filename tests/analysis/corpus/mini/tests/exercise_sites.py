"""Chaos-style exercise referencing the documented fault site.

Deliberately *not* named ``test_*.py`` so the real pytest run never
collects corpus fixtures; the fault-site drift pass only greps this
text for site names — it must mention exactly one (the documented one),
or the seeded not-exercised finding disappears.
"""

EXERCISED = ["good.site"]
