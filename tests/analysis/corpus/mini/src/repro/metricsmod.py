"""Metric publications and env-var reads with seeded DRIFT002/DRIFT003.

Seeds: ``mini.undocumented`` is published but never documented;
``REPRO_MINI_SECRET`` is read but never documented. Their documented
counterparts (``mini.documented``, ``REPRO_MINI_USED``) must stay
finding-free.
"""

import os


class _Registry:
    def add(self, name, value):
        return (name, value)


metrics = _Registry()


def publish():
    metrics.add("mini.documented", 1)
    metrics.add("mini.undocumented", 1)


def read_config():
    return (
        os.environ.get("REPRO_MINI_USED"),
        os.environ.get("REPRO_MINI_SECRET"),
    )
