"""Seeded INV008 violations: per-node decode loops in the mine hot path.

The module borrows the real hot-path name (``repro/core/cfp_growth.py``)
so the ``MINE_HOT_PATH`` patterns match. ``repro/core/`` is also a typed
package, so every function here is fully annotated — the only seeded
findings are the two INV008 decode loops.
"""

from __future__ import annotations


def rank_support_slow(array: object, rank: int) -> int:
    total = 0
    for __, __, __, count in array.decode_subarray(rank):
        total += count
    return total


def node_counts_slow(array: object, rank: int) -> list[int]:
    return [count for *__, count in array.iter_subarray(rank)]
