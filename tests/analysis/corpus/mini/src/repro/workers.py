"""Worker task with seeded EFF001–EFF004 violations.

``_worker_task`` is packed into a ``(function, args)`` task tuple in a
module that imports ``Supervisor``, so the worker-effect pass must
discover it as a pool entry point and flag every effect below —
including the EFF001 in ``_helper``, which is only reachable
transitively.
"""

import os
import random

from repro.runtime import Supervisor

_CACHE = {}


def _helper(key, value):
    _CACHE[key] = value


def _worker_task(rank):
    global _SEEN
    _SEEN = rank
    buf = attach_array("mini-segment")  # noqa: F821 - inert fixture
    buf[0] = rank
    os.environ["MINI_FLAG"] = "1"
    jitter = random.random()
    _helper(rank, jitter)
    return rank


def run_all():
    tasks = {rank: (_worker_task, (rank,)) for rank in range(2)}
    return Supervisor().run(tasks)
