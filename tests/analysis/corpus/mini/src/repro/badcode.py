"""Seeded INV001–INV004 violations (one per commented line)."""

from contextlib import suppress


def append_to(value, bucket=[]):  # INV003: mutable default
    bucket.append(value)
    return bucket


def masked(flags):
    return flags & 0x80  # INV002: raw mask literal outside repro.compress


def peek(arena):
    return arena.buf[0]  # INV001: arena bytes outside the codec layer


def swallow(action):
    try:
        return action()
    except Exception:  # INV004: overbroad except
        return None


def swallow_quietly(action):
    with suppress(Exception):  # INV004: overbroad suppress()
        return action()
    return None
