"""Seeded-violation mini package for the static-analyzer self-test.

Nothing in this tree is ever imported — the analyzer's index is purely
syntactic, and that property is exactly what this corpus exercises.
"""
