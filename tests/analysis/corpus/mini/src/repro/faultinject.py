"""Mini fault-site registry with seeded DRIFT001 violations.

Seeds: ``typo.site`` is fired but absent from ``SITES``, the docs and
the tests (three findings on one line); ``dead.site`` is declared in
``SITES`` but fired nowhere (dead registry entry).
"""

SITES = frozenset({"good.site", "dead.site"})


def fire(site, **context):
    return (site, context)


def trigger_documented():
    fire("good.site")


def trigger_typo():
    fire("typo.site")
