"""Unit tests for the CFP-array byte-format verifier."""

from __future__ import annotations

import random

import pytest

from repro.analysis.arraycheck import (
    ArrayValidationError,
    check_array_parts,
    validate_array,
)
from repro.compress import varint
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree


def build_tree(seed: int = 11, n_ranks: int = 12, n_transactions: int = 80):
    rng = random.Random(seed)
    tree = TernaryCfpTree(n_ranks=n_ranks)
    for __ in range(n_transactions):
        size = rng.randint(1, min(6, n_ranks))
        tree.insert(sorted(rng.sample(range(1, n_ranks + 1), size)))
    return tree


def triple(delta_item: int, dpos: int, count: int) -> bytes:
    return (
        varint.encode(delta_item)
        + varint.encode(varint.zigzag(dpos))
        + varint.encode(count)
    )


def make_parts(subarrays: list[bytes]) -> tuple[int, bytes, list[int]]:
    """Assemble (n_ranks, buffer, starts) from per-rank subarray bytes."""
    n_ranks = len(subarrays)
    starts = [0, 0]
    buffer = b""
    for sub in subarrays:
        buffer += sub
        starts.append(len(buffer))
    return n_ranks, buffer, starts


class TestIntactArrays:
    def test_converted_array_is_clean(self):
        tree = build_tree()
        array = convert(tree)
        report = validate_array(array, tree)
        assert report.ok
        assert report.diagnostics == []
        assert report.nodes == tree.logical_node_count

    def test_empty_array_is_clean(self):
        report = check_array_parts(3, b"", [0, 0, 0, 0, 0])
        assert report.ok
        assert report.nodes == 0

    def test_strict_mode_passes_intact(self):
        tree = build_tree(seed=5)
        array = convert(tree)
        assert validate_array(array, tree, strict=True).ok


class TestIndexChecks:
    def test_wrong_index_length(self):
        report = check_array_parts(3, b"", [0, 0, 0])
        assert report.codes() == {"ARR001"}

    def test_nonmonotonic_index(self):
        sub = triple(1, 0, 5)
        n_ranks, buffer, starts = make_parts([sub, sub])
        starts[2], starts[3] = starts[3], starts[2]
        report = check_array_parts(n_ranks, buffer, starts)
        assert "ARR001" in report.codes()

    def test_index_not_spanning_buffer(self):
        n_ranks, buffer, starts = make_parts([triple(1, 0, 5)])
        starts[-1] += 3
        report = check_array_parts(n_ranks, buffer, starts)
        assert "ARR002" in report.codes()

    def test_first_subarray_must_start_at_zero(self):
        n_ranks, buffer, starts = make_parts([triple(1, 0, 5)])
        starts[1] = 1
        report = check_array_parts(n_ranks, buffer, starts)
        assert "ARR002" in report.codes()


class TestTripleChecks:
    def test_non_canonical_varint(self):
        # 5 encoded as two bytes with a redundant continuation byte.
        sub = bytes([0x85, 0x00]) + varint.encode(0) + varint.encode(5)
        report = check_array_parts(*make_parts([sub]))
        assert "ARR010" in report.codes()

    def test_truncated_triple(self):
        sub = triple(1, 0, 5)[:-1]
        report = check_array_parts(*make_parts([sub]))
        assert "ARR011" in report.codes()

    def test_triple_crossing_subarray_boundary(self):
        # Rank 1 ends mid-varint; the bytes continue into rank 2's subarray.
        first = triple(1, 0, 5) + b"\x80"  # dangling continuation byte
        second = triple(2, 0, 3)
        report = check_array_parts(*make_parts([first, second]))
        assert "ARR011" in report.codes()

    def test_delta_item_out_of_range(self):
        # delta_item 3 at rank 2 would place the parent at rank -1.
        sub = triple(3, 0, 5)
        report = check_array_parts(*make_parts([b"", sub]))
        assert "ARR012" in report.codes()

    def test_delta_item_zero(self):
        report = check_array_parts(*make_parts([triple(0, 0, 5)]))
        assert "ARR012" in report.codes()

    def test_nonpositive_count(self):
        report = check_array_parts(*make_parts([triple(1, 0, 0)]))
        assert "ARR015" in report.codes()


class TestLinkageChecks:
    def test_dpos_not_a_node_start(self):
        parent = triple(1, 0, 5)
        child = triple(1, -1, 5)  # parent_local would be 1, not a start
        report = check_array_parts(*make_parts([parent, child]))
        assert "ARR013" in report.codes()

    def test_root_child_with_nonzero_dpos(self):
        report = check_array_parts(*make_parts([triple(1, 2, 5)]))
        assert "ARR013" in report.codes()

    def test_child_counts_exceed_parent(self):
        parent = triple(1, 0, 2)
        child = triple(1, 0, 5)  # 5 > parent's 2
        report = check_array_parts(*make_parts([parent, child]))
        assert "ARR014" in report.codes()

    def test_conserving_counts_pass(self):
        parent = triple(1, 0, 5)
        child = triple(1, 0, 5)
        report = check_array_parts(*make_parts([parent, child]))
        assert report.ok


class TestTreeCrossChecks:
    def test_node_census_mismatch(self):
        tree = build_tree(seed=2)
        array = convert(tree)
        # Drop the last rank's subarray entirely.
        starts = list(array.starts)
        cut = starts[-2]
        buffer = bytes(array.buffer[:cut])
        starts[-1] = cut
        report = check_array_parts(array.n_ranks, buffer, starts, tree)
        assert "ARR020" in report.codes()

    def test_transaction_count_mismatch(self):
        tree = build_tree(seed=3)
        array = convert(tree)
        report = check_array_parts(
            array.n_ranks, bytes(array.buffer), array.starts, tree
        )
        assert report.ok
        tree.transaction_count += 1
        report = check_array_parts(
            array.n_ranks, bytes(array.buffer), array.starts, tree
        )
        assert "ARR021" in report.codes()

    def test_strict_mode_raises(self):
        with pytest.raises(ArrayValidationError):
            tree = build_tree(seed=4)
            array = convert(tree)
            array.buffer[0] ^= 0xFF
            validate_array(array, tree, strict=True)
