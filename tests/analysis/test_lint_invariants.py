"""Tests for the custom AST invariant linter (tools/lint_invariants.py)."""

from __future__ import annotations

import ast
import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TOOL_PATH = REPO_ROOT / "tools" / "lint_invariants.py"


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("lint_invariants", TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    # Register before exec: the tool's @dataclass resolves its module via
    # sys.modules, which is None for an unregistered spec-loaded module.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop(spec.name, None)


def violations_for(lint, module: str, source: str) -> set[str]:
    """Run the checker on a snippet pretending it lives at ``module``."""
    checker = lint._FileChecker(module)
    checker.visit(ast.parse(source))
    return {v.code for v in checker.violations}


class TestRepoIsClean:
    def test_src_and_tools_lint_clean(self, lint):
        violations = lint.lint_paths(
            [REPO_ROOT / "src" / "repro", REPO_ROOT / "tools"]
        )
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_cli_entrypoint_exits_zero(self):
        result = subprocess.run(
            [sys.executable, str(TOOL_PATH)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestArenaBufRule:
    def test_direct_subscript_flagged(self, lint):
        src = "x = tree.arena.buf[3:8]\n"
        assert violations_for(lint, "repro/core/ternary.py", src) == {"INV001"}

    def test_alias_subscript_flagged(self, lint):
        src = "buf = tree.arena.buf\nvalue = buf[0]\n"
        assert violations_for(lint, "repro/core/ternary.py", src) == {"INV001"}

    def test_alias_pass_through_allowed(self, lint):
        src = "buf = tree.arena.buf\nnode = decode_node(buf, addr)\n"
        assert violations_for(lint, "repro/core/ternary.py", src) == set()

    def test_codec_module_allowed(self, lint):
        src = "x = arena.buf[3:8]\n"
        assert violations_for(lint, "repro/core/node_codec.py", src) == set()
        assert violations_for(lint, "repro/memman/arena.py", src) == set()
        assert violations_for(lint, "repro/compress/varint.py", src) == set()

    def test_unrelated_buffer_name_ignored(self, lint):
        src = "buf = self.buffer\nvalue = buf[0]\n"
        assert violations_for(lint, "repro/core/cfp_array.py", src) == set()


class TestMaskLiteralRule:
    def test_mask_literal_flagged_outside_compress(self, lint):
        src = "flag = byte & 0x80\n"
        assert violations_for(lint, "repro/core/node_codec.py", src) == {
            "INV002"
        }

    def test_mask_literal_allowed_in_compress(self, lint):
        src = "flag = byte & 0x80\n"
        assert violations_for(lint, "repro/compress/varint.py", src) == set()

    def test_non_mask_literal_ignored(self, lint):
        src = "flag = byte & 0x0F\nother = byte + 0x80\n"
        assert violations_for(lint, "repro/core/node_codec.py", src) == set()


class TestDefaultsAndExcepts:
    def test_mutable_default_flagged(self, lint):
        for default in ("[]", "{}", "set()", "dict()", "bytearray()"):
            src = f"def f(x={default}):\n    return x\n"
            assert "INV003" in violations_for(lint, "repro/cli.py", src), default

    def test_immutable_default_ok(self, lint):
        src = "def f(x=(), y=None, z=0):\n    return x\n"
        assert violations_for(lint, "repro/cli.py", src) == set()

    def test_bare_except_flagged(self, lint):
        src = "try:\n    pass\nexcept:\n    pass\n"
        assert "INV004" in violations_for(lint, "repro/cli.py", src)

    def test_broad_except_flagged(self, lint):
        src = "try:\n    pass\nexcept Exception:\n    pass\n"
        assert "INV004" in violations_for(lint, "repro/cli.py", src)
        src = "try:\n    pass\nexcept (ValueError, BaseException):\n    pass\n"
        assert "INV004" in violations_for(lint, "repro/cli.py", src)

    def test_specific_except_ok(self, lint):
        src = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert violations_for(lint, "repro/cli.py", src) == set()


class TestAnnotationRule:
    def test_missing_param_annotation_flagged(self, lint):
        src = "def f(x) -> int:\n    return 0\n"
        assert "INV005" in violations_for(lint, "repro/core/x.py", src)

    def test_missing_return_annotation_flagged(self, lint):
        src = "def f(x: int):\n    return x\n"
        assert "INV005" in violations_for(lint, "repro/core/x.py", src)

    def test_self_exempt(self, lint):
        src = (
            "class C:\n"
            "    def method(self, x: int) -> int:\n"
            "        return x\n"
        )
        assert violations_for(lint, "repro/core/x.py", src) == set()

    def test_untyped_package_exempt(self, lint):
        src = "def f(x):\n    return x\n"
        assert violations_for(lint, "repro/experiments/x.py", src) == set()


class TestPragmaSuppression:
    def test_pragma_suppresses_matching_code(self, lint, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(
            "try:\n"
            "    pass\n"
            "except BaseException:  # lint: ignore[INV004]\n"
            "    pass\n"
        )
        assert lint.lint_file(path) == []

    def test_pragma_is_code_specific(self, lint, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(
            "try:\n"
            "    pass\n"
            "except BaseException:  # lint: ignore[INV001]\n"
            "    pass\n"
        )
        assert [v.code for v in lint.lint_file(path)] == ["INV004"]


class TestObsFreeLoopsRule:
    def test_obs_attr_in_for_loop_flagged(self, lint):
        src = (
            "from repro import obs\n"
            "for node in nodes:\n"
            "    obs.metrics.add('nodes')\n"
        )
        assert violations_for(lint, "repro/core/validate.py", src) == {"INV006"}

    def test_direct_import_in_while_flagged(self, lint):
        src = (
            "from repro.obs import maybe_span\n"
            "while cursor:\n"
            "    with maybe_span('hop'):\n"
            "        cursor = cursor.next\n"
        )
        assert violations_for(lint, "repro/analysis/arraycheck.py", src) == {
            "INV006"
        }

    def test_module_import_attribute_flagged(self, lint):
        src = (
            "import repro.obs\n"
            "for node in nodes:\n"
            "    repro.obs.metrics.add('n')\n"
        )
        assert violations_for(lint, "repro/core/validate.py", src) == {"INV006"}

    def test_usage_outside_loops_allowed(self, lint):
        src = (
            "from repro import obs\n"
            "for node in nodes:\n"
            "    pass\n"
            "obs.metrics.add('nodes', len(nodes))\n"
        )
        assert violations_for(lint, "repro/core/validate.py", src) == set()

    def test_other_modules_exempt(self, lint):
        src = (
            "from repro import obs\n"
            "for rank in ranks:\n"
            "    obs.metrics.add('ranks')\n"
        )
        assert violations_for(lint, "repro/core/cfp_growth.py", src) == set()

    def test_unrelated_names_in_loops_ignored(self, lint):
        src = (
            "from repro import obs\n"
            "for node in nodes:\n"
            "    total = node.count\n"
        )
        assert violations_for(lint, "repro/core/validate.py", src) == set()


class TestBulkEncodeRule:
    def test_per_field_encode_into_flagged(self, lint):
        src = (
            "from repro.compress import varint\n"
            "def place(buf: bytearray, offset: int, value: int) -> int:\n"
            "    return varint.encode_into(buf, offset, value)\n"
        )
        assert violations_for(lint, "repro/core/conversion.py", src) == {
            "INV007"
        }

    def test_bare_encode_call_flagged(self, lint):
        src = (
            "from repro.compress.varint import encode\n"
            "def place(value: int) -> bytes:\n"
            "    return encode(value)\n"
        )
        assert violations_for(lint, "repro/core/conversion.py", src) == {
            "INV007"
        }

    def test_bulk_kernel_allowed(self, lint):
        src = (
            "from repro.compress import varint\n"
            "def place(buf: bytearray, start: int, triples: list) -> int:\n"
            "    return varint.encode_triples(buf, start, triples)\n"
        )
        assert violations_for(lint, "repro/core/conversion.py", src) == set()

    def test_sizing_helpers_allowed(self, lint):
        src = (
            "from repro.compress import varint\n"
            "def size(value: int) -> int:\n"
            "    return varint.encoded_size(value) + varint.triple_size(1, 0, 1)\n"
        )
        assert violations_for(lint, "repro/core/conversion.py", src) == set()

    def test_other_modules_exempt(self, lint):
        src = (
            "from repro.compress import varint\n"
            "def write(buf: bytearray, offset: int, value: int) -> int:\n"
            "    return varint.encode_into(buf, offset, value)\n"
        )
        assert violations_for(lint, "repro/core/cfp_array.py", src) == set()


class TestMineHotPathRule:
    """INV008: no per-node decode loops in the mine hot path."""

    def test_for_loop_over_decode_subarray_flagged(self, lint):
        src = (
            "def support(array: object, rank: int) -> int:\n"
            "    total = 0\n"
            "    for __, __, __, count in array.decode_subarray(rank):\n"
            "        total += count\n"
            "    return total\n"
        )
        assert violations_for(lint, "repro/core/cfp_growth.py", src) == {
            "INV008"
        }

    def test_comprehension_over_iter_subarray_flagged(self, lint):
        src = (
            "def counts(array: object, rank: int) -> list[int]:\n"
            "    return [c for *__, c in array.iter_subarray(rank)]\n"
        )
        assert violations_for(lint, "repro/core/cfp_array.py", src) == {
            "INV008"
        }

    def test_decode_triples_loop_flagged(self, lint):
        src = (
            "from repro.compress import varint\n"
            "def walk(buf: bytes, start: int, end: int) -> None:\n"
            "    for triple in varint.decode_triples(buf, start, end):\n"
            "        print(triple)\n"
        )
        assert violations_for(lint, "repro/core/parallel.py", src) == {
            "INV008"
        }

    def test_columnar_kernels_allowed(self, lint):
        src = (
            "def support(array: object, rank: int) -> int:\n"
            "    return sum(array.subarray_columns(rank).counts)\n"
        )
        assert violations_for(lint, "repro/core/cfp_growth.py", src) == set()

    def test_loop_over_materialized_rows_allowed(self, lint):
        src = (
            "def spans(array: object, rank: int) -> int:\n"
            "    rows = array.decode_subarray(rank)\n"
            "    total = 0\n"
            "    for row in rows:\n"
            "        total += row[3]\n"
            "    return total\n"
        )
        assert violations_for(lint, "repro/core/cfp_growth.py", src) == set()

    def test_other_modules_exempt(self, lint):
        src = (
            "def support(array: object, rank: int) -> int:\n"
            "    total = 0\n"
            "    for __, __, __, count in array.decode_subarray(rank):\n"
            "        total += count\n"
            "    return total\n"
        )
        assert violations_for(lint, "repro/core/validate.py", src) == set()
