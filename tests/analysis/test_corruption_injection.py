"""Corruption-injection sweep: the acceptance test for ``repro check``.

Builds real artifacts (CFP-tree checkpoint, CFP-array file), injects one
corruption per class, and asserts that the offline checkers (1) stay silent
on intact artifacts and (2) detect every injected class with a distinct
diagnostic code — at least eight classes across the tree arena, the
CFP-array bytes, and the pagefile layer.
"""

from __future__ import annotations

import json
import random
import struct
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import check_file, validate_array
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.core.validate import validate_tree
from repro.storage.cfp_store import (
    load_cfp_tree,
    save_cfp_array,
    save_cfp_tree,
)
from repro.storage.pagefile import PAGE_SIZE

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def build_tree(seed: int = 31, n_ranks: int = 18, n_transactions: int = 150):
    rng = random.Random(seed)
    tree = TernaryCfpTree(n_ranks=n_ranks)
    for __ in range(n_transactions):
        size = rng.randint(1, min(8, n_ranks))
        tree.insert(sorted(rng.sample(range(1, n_ranks + 1), size)))
    return tree


def flip(path: Path, offset: int, mask: int = 0xFF) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        value = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([value ^ mask]))


@pytest.fixture
def artifacts(tmp_path):
    tree = build_tree()
    array = convert(tree)
    array_path = tmp_path / "array.cfpa"
    tree_path = tmp_path / "tree.cfpt"
    save_cfp_array(array, array_path)
    save_cfp_tree(tree, tree_path)
    return tree, array, array_path, tree_path


class TestZeroFalsePositives:
    """Intact artifacts must be reported clean by every checker."""

    def test_fresh_artifacts_clean(self, artifacts):
        tree, array, array_path, tree_path = artifacts
        assert validate_tree(tree, strict=False).ok
        assert validate_array(array, tree).ok
        assert check_file(array_path).ok
        assert check_file(tree_path).ok

    def test_roundtripped_checkpoint_clean(self, artifacts, tmp_path):
        __, __, __, tree_path = artifacts
        restored = load_cfp_tree(tree_path)
        assert validate_tree(restored, strict=False).ok
        resaved = tmp_path / "resaved.cfpt"
        save_cfp_tree(restored, resaved)
        assert check_file(resaved).ok

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_many_seeds_clean(self, seed, tmp_path):
        tree = build_tree(seed=seed, n_ranks=10, n_transactions=60)
        array = convert(tree)
        assert validate_array(array, tree).ok
        path = tmp_path / "a.cfpa"
        save_cfp_array(array, path)
        assert check_file(path).ok


class TestCorruptionSweep:
    """Each injected corruption class yields its distinct diagnostic code."""

    def test_at_least_eight_distinct_classes(self, artifacts, tmp_path):
        tree, array, array_path, tree_path = artifacts
        detected: set[str] = set()

        # --- pagefile layer -------------------------------------------
        # 1. torn write: file is not a whole number of pages
        p = tmp_path / "torn.cfpa"
        p.write_bytes(array_path.read_bytes() + b"x")
        detected |= check_file(p).codes()  # STO001

        # 2. clobbered magic
        p = tmp_path / "magic.cfpa"
        p.write_bytes(array_path.read_bytes())
        flip(p, 1)
        detected |= check_file(p).codes()  # STO002

        # 3. version from the future
        p = tmp_path / "version.cfpa"
        p.write_bytes(array_path.read_bytes())
        with open(p, "r+b") as handle:
            handle.seek(4)
            handle.write(struct.pack("<I", 77))
        detected |= check_file(p).codes()  # STO003

        # 4. truncated payload
        p = tmp_path / "truncated.cfpt"
        p.write_bytes(tree_path.read_bytes()[:-2 * PAGE_SIZE])
        detected |= check_file(p).codes()  # STO005

        # 5. bit rot in a payload page (checksum catches it even when the
        #    byte lands in page padding that no structural walk visits)
        p = tmp_path / "bitrot.cfpa"
        p.write_bytes(array_path.read_bytes())
        flip(p, 2 * PAGE_SIZE - 1)
        detected |= check_file(p).codes()  # STO010

        # 6. mangled checkpoint metadata
        p = tmp_path / "meta.cfpt"
        p.write_bytes(tree_path.read_bytes())
        flip(p, 17)
        detected |= check_file(p).codes()  # STO012

        # --- CFP-array bytes ------------------------------------------
        # 7-9. flip the first byte of a subarray triple: the delta_item
        # field decodes to garbage, rewiring linkage and canonicality.
        p = tmp_path / "arrbytes.cfpa"
        p.write_bytes(array_path.read_bytes())
        data_page_offset = PAGE_SIZE  # 18 ranks fit one header page
        for offset in (0, 7, 31, 64):
            flip(p, data_page_offset + offset, 0x86)
        detected |= check_file(p).codes()  # ARR01x family

        # 10. array/tree census drift (in-memory cross-check)
        drifted = convert(tree)
        drifted_tree = build_tree(seed=99)
        report = validate_array(drifted, drifted_tree)
        detected |= report.codes()  # ARR020/ARR021

        # --- tree arena -----------------------------------------------
        # 11. corrupt arena bytes inside a restored checkpoint
        p = tmp_path / "arena.cfpt"
        p.write_bytes(tree_path.read_bytes())
        for offset in range(64, 96):
            flip(p, PAGE_SIZE + offset)
        detected |= check_file(p).codes()  # TRE001 (+ STO010)

        array_codes = {c for c in detected if c.startswith("ARR")}
        store_codes = {c for c in detected if c.startswith("STO")}
        tree_codes = {c for c in detected if c.startswith("TRE")}
        assert array_codes, "no CFP-array corruption class detected"
        assert tree_codes, "no tree-arena corruption class detected"
        assert len(store_codes) >= 5, f"store classes: {sorted(store_codes)}"
        assert len(detected) >= 8, f"detected only: {sorted(detected)}"

    def test_every_flip_of_array_payload_detected(self, artifacts, tmp_path):
        """Any single bit flip in CFP-array content bytes is caught."""
        __, array, array_path, __ = artifacts
        rng = random.Random(7)
        content_len = len(array.buffer)
        for __ in range(25):
            offset = rng.randrange(content_len)
            p = tmp_path / "flip.cfpa"
            p.write_bytes(array_path.read_bytes())
            flip(p, PAGE_SIZE + offset, 1 << rng.randrange(8))
            report = check_file(p)
            # The CRC is unconditionally sensitive; structural checks
            # additionally classify most flips.
            assert "STO010" in report.codes(), f"flip at {offset} missed"


class TestCliExitCodes:
    def run_check(self, *argv: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "repro", "check", *argv],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_clean_files_exit_zero(self, artifacts):
        __, __, array_path, tree_path = artifacts
        result = self.run_check(str(array_path), str(tree_path))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "ok (cfp-array v2" in result.stdout
        assert "ok (cfp-tree v2" in result.stdout

    def test_corrupt_file_exits_one_with_json(self, artifacts):
        __, __, array_path, __ = artifacts
        flip(array_path, PAGE_SIZE + 3)
        result = self.run_check(str(array_path), "--json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload[0]["ok"] is False
        codes = {d["code"] for d in payload[0]["diagnostics"]}
        assert "STO010" in codes

    def test_missing_file_exits_three(self, tmp_path):
        result = self.run_check(str(tmp_path / "missing.cfpa"))
        assert result.returncode == 3
        assert "unreadable" in result.stderr

    def test_usage_error_exits_two(self):
        result = self.run_check()
        assert result.returncode == 2
