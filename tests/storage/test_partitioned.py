"""Partitioned (v3) store format: round trip, placement, corruption, mining."""

from __future__ import annotations

import random

import pytest

from repro.core.cfp_growth import mine_array, mine_array_partitioned
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.fptree.growth import ListCollector
from repro.storage import (
    PAGE_SIZE,
    PageFile,
    PartitionedCfpArray,
    RoundRobinPlacement,
    load_cfp_array,
    plan_partitions,
    save_cfp_array_partitioned,
)
from repro.storage.cfp_store import StorageFormatError, read_array_header
from repro.util.items import prepare_transactions

MIN_SUPPORT = 3


def _build_array(seed=7, n_transactions=700, n_items=50):
    rng = random.Random(seed)
    database = [
        rng.sample(range(n_items), rng.randint(3, 10))
        for __ in range(n_transactions)
    ]
    table, transactions = prepare_transactions(database, 2)
    return convert(TernaryCfpTree.from_rank_transactions(transactions, len(table)))


@pytest.fixture(scope="module")
def array():
    return _build_array()


class TestPlanPartitions:
    def test_covers_all_ranks_contiguously(self, array):
        for target in (256, PAGE_SIZE, 1 << 20):
            ranges = plan_partitions(array.starts, array.n_ranks, target)
            assert ranges[0][0] == 1
            assert ranges[-1][1] == array.n_ranks
            for (___, prev_last), (first, ___) in zip(ranges, ranges[1:]):
                assert first == prev_last + 1

    def test_big_target_is_one_partition(self, array):
        ranges = plan_partitions(array.starts, array.n_ranks, 1 << 30)
        assert ranges == [(1, array.n_ranks)]


class TestRoundTrip:
    def test_load_reassembles_identical_array(self, array, tmp_path):
        path = tmp_path / "p.cfpa"
        for target in (512, PAGE_SIZE, 8 * PAGE_SIZE):
            save_cfp_array_partitioned(array, path, partition_bytes=target)
            loaded = load_cfp_array(path)
            assert bytes(loaded.buffer) == bytes(array.buffer)
            assert loaded.starts == array.starts
            assert loaded.n_ranks == array.n_ranks

    def test_placement_changes_layout_not_content(self, array, tmp_path):
        append_path = tmp_path / "append.cfpa"
        rotated_path = tmp_path / "rotated.cfpa"
        save_cfp_array_partitioned(array, append_path, partition_bytes=512)
        save_cfp_array_partitioned(
            array,
            rotated_path,
            partition_bytes=512,
            placement=RoundRobinPlacement(3),
        )
        with PageFile.open_readonly(append_path) as a, PageFile.open_readonly(
            rotated_path
        ) as b:
            parts_a = read_array_header(a).partitions
            parts_b = read_array_header(b).partitions
        # Same logical manifest (rank ranges, sizes, CRCs) ...
        assert [(p.first_rank, p.last_rank, p.byte_len, p.crc) for p in parts_a] == [
            (p.first_rank, p.last_rank, p.byte_len, p.crc) for p in parts_b
        ]
        # ... different physical file order ...
        assert [p.data_page for p in parts_a] != [p.data_page for p in parts_b]
        # ... and identical reassembled content either way.
        assert bytes(load_cfp_array(append_path).buffer) == bytes(
            load_cfp_array(rotated_path).buffer
        )

    def test_empty_array_round_trips(self, tmp_path):
        table, transactions = prepare_transactions([[1], [2]], 99)
        empty = convert(
            TernaryCfpTree.from_rank_transactions(transactions, len(table))
        )
        path = tmp_path / "empty.cfpa"
        save_cfp_array_partitioned(empty, path)
        loaded = load_cfp_array(path)
        assert bytes(loaded.buffer) == bytes(empty.buffer)


class TestCorruption:
    """storecheck must name what broke: STO006 manifest, STO011 payload."""

    def _flip_byte(self, path, offset):
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))

    def test_partition_payload_corruption_is_sto011(self, array, tmp_path):
        from repro.analysis import check_file

        path = tmp_path / "corrupt.cfpa"
        save_cfp_array_partitioned(array, path, partition_bytes=PAGE_SIZE)
        with PageFile.open_readonly(path) as pagefile:
            part = read_array_header(pagefile).partitions[1]
        self._flip_byte(path, part.data_page * PAGE_SIZE + 1)
        report = check_file(path, deep=True)
        assert not report.ok
        codes = {diag.code for diag in report.diagnostics}
        assert "STO011" in codes or "STO004" in codes  # CRC or page checksum

    def test_manifest_corruption_is_sto006(self, array, tmp_path):
        from repro.analysis import check_file
        from repro.storage.cfp_store import _PARTITION_RECORD

        path = tmp_path / "badmanifest.cfpa"
        save_cfp_array_partitioned(array, path, partition_bytes=PAGE_SIZE)
        # Overwrite partition 0's first_rank in the manifest with a rank
        # that breaks contiguous coverage, then re-seal the page checksum
        # so only the *semantic* check can catch it.
        manifest_offset = 28 + 8 * (array.n_ranks + 2)
        with open(path, "r+b") as handle:
            handle.seek(manifest_offset)
            record = bytearray(handle.read(_PARTITION_RECORD.size))
            first, last, length, page, crc = _PARTITION_RECORD.unpack(bytes(record))
            handle.seek(manifest_offset)
            handle.write(_PARTITION_RECORD.pack(first + 1, last, length, page, crc))
        _reseal_page_checksum(path, page_no=0)
        report = check_file(path, deep=False)
        assert not report.ok
        assert "STO006" in {diag.code for diag in report.diagnostics}

    def test_loader_rejects_corrupt_partition(self, array, tmp_path):
        path = tmp_path / "c.cfpa"
        save_cfp_array_partitioned(array, path, partition_bytes=PAGE_SIZE)
        with PageFile.open_readonly(path) as pagefile:
            part = read_array_header(pagefile).partitions[0]
        self._flip_byte(path, part.data_page * PAGE_SIZE)
        with pytest.raises(StorageFormatError):
            load_cfp_array(path)


def _reseal_page_checksum(path, page_no):
    """Recompute the trailer checksum of one content page after tampering."""
    import struct
    import zlib

    from repro.storage.cfp_store import CHECKSUM_SIZE

    with open(path, "r+b") as handle:
        size = handle.seek(0, 2)
        n_pages = size // PAGE_SIZE
        handle.seek(page_no * PAGE_SIZE)
        page = handle.read(PAGE_SIZE)
        # The trailer occupies the final page(s): content checksums are
        # CHECKSUM_SIZE-byte records starting at the first trailer page.
        content_pages = n_pages - max(
            1, -(-(n_pages - 1) * CHECKSUM_SIZE // PAGE_SIZE)
        )
        trailer_start = content_pages * PAGE_SIZE
        handle.seek(trailer_start + page_no * CHECKSUM_SIZE)
        handle.write(struct.pack("<I", zlib.crc32(page) & 0xFFFFFFFF))


class TestPartitionedMining:
    def test_itemsets_identical_to_in_core(self, array, tmp_path):
        reference = ListCollector()
        mine_array(array, MIN_SUPPORT, reference)
        path = tmp_path / "mine.cfpa"
        for target, hot, pool_pages in (
            (PAGE_SIZE, 0, 2),
            (2 * PAGE_SIZE, 1 << 12, 4),
            (1 << 20, 1 << 16, 64),
        ):
            save_cfp_array_partitioned(array, path, partition_bytes=target)
            with PartitionedCfpArray(
                path, pool_pages=pool_pages, hot_bytes=hot
            ) as disk:
                got = ListCollector()
                mine_array_partitioned(disk, MIN_SUPPORT, got)
            assert got.itemsets == reference.itemsets, (target, hot)

    def test_mining_with_prefetch_disabled_is_identical(
        self, array, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PREFETCH", "0")
        reference = ListCollector()
        mine_array(array, MIN_SUPPORT, reference)
        path = tmp_path / "nopf.cfpa"
        save_cfp_array_partitioned(array, path, partition_bytes=PAGE_SIZE)
        with PartitionedCfpArray(path, pool_pages=2) as disk:
            assert disk._prefetcher is None
            got = ListCollector()
            mine_array_partitioned(disk, MIN_SUPPORT, got)
        assert got.itemsets == reference.itemsets

    def test_traversal_interface_matches_in_core(self, array, tmp_path):
        path = tmp_path / "iface.cfpa"
        save_cfp_array_partitioned(array, path, partition_bytes=PAGE_SIZE)
        with PartitionedCfpArray(path, pool_pages=4, hot_bytes=512) as disk:
            assert disk.node_count == array.node_count
            for rank in array.active_ranks_descending():
                assert (
                    disk.subarray_columns(rank).triples
                    == array.subarray_columns(rank).triples
                )
                assert disk.rank_support(rank) == array.rank_support(rank)
            local = array.starts[2] - array.starts[1]
            if local:
                assert disk.path_ranks(1, 0) == array.path_ranks(1, 0)

    def test_hot_set_pins_most_frequent_ranks(self, array, tmp_path):
        path = tmp_path / "hot.cfpa"
        save_cfp_array_partitioned(array, path, partition_bytes=PAGE_SIZE)
        with PartitionedCfpArray(path, pool_pages=4, hot_bytes=1 << 14) as disk:
            assert disk.hot_ranks > 0
            # Hot ranks are a prefix of the frequency order.
            hot = sorted(disk._hot)
            nonempty_prefix = [
                rank
                for rank in range(1, array.n_ranks + 1)
                if array.starts[rank + 1] > array.starts[rank]
            ][: len(hot)]
            assert hot == nonempty_prefix
            assert disk.memory_bytes >= disk.hot_bytes

    def test_rejects_v2_store(self, array, tmp_path):
        from repro.storage import save_cfp_array

        path = tmp_path / "v2.cfpa"
        save_cfp_array(array, path)
        with pytest.raises(StorageFormatError, match="not a partitioned"):
            PartitionedCfpArray(path)


class TestCompaction:
    def test_compact_shrinks_and_preserves_mining(self, array, tmp_path):
        from repro.storage.compaction import compact_store, store_fragmentation

        path = tmp_path / "frag.cfpa"
        save_cfp_array_partitioned(array, path, partition_bytes=256)
        frag_before, parts_before = store_fragmentation(path)
        reference = ListCollector()
        mine_array(array, MIN_SUPPORT, reference)
        report = compact_store(path, partition_bytes=64 * PAGE_SIZE, threshold=0.1)
        assert report.ran
        frag_after, parts_after = store_fragmentation(path)
        assert frag_after < frag_before
        assert parts_after < parts_before
        with PartitionedCfpArray(path, pool_pages=4) as disk:
            got = ListCollector()
            mine_array_partitioned(disk, MIN_SUPPORT, got)
        assert got.itemsets == reference.itemsets

    def test_compaction_converges(self, array, tmp_path):
        from repro.storage.compaction import compact_store

        path = tmp_path / "conv.cfpa"
        save_cfp_array_partitioned(array, path, partition_bytes=256)
        first = compact_store(path, partition_bytes=64 * PAGE_SIZE, threshold=0.05)
        assert first.ran
        # Even with a threshold below the intrinsic page-padding slack, a
        # second pass must be a no-op: re-planning cannot shrink further.
        second = compact_store(path, partition_bytes=64 * PAGE_SIZE, threshold=0.05)
        assert not second.ran
