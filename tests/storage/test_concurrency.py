"""Concurrent-reader regression tests for the shared-pool serving path.

The bug: :class:`BufferPool` and the CFP-array's decoded-subarray cache
mutated their OrderedDict LRU state and stats counters with no
synchronization. Safe under fork-based workers (every fork owns a private
pool), a data race once the query server shares one pool/array across a
thread executor: ``move_to_end`` racing an eviction corrupts the
OrderedDict, and ``hits += 1`` loses updates.

These tests hammer the structures from many threads with a tiny switch
interval (so the interpreter preempts mid-increment) and assert the
conservation laws the race breaks:

* pool: ``hits + faults == accesses`` and residency never exceeds capacity;
* subarray cache: ``hits + misses == lookups`` and ``used_bytes`` equals
  the sum of resident charges.

On the unguarded code they fail with lost counter updates, inconsistent
byte accounting, or an outright ``KeyError``/``RuntimeError`` out of the
OrderedDict.
"""

import random
import sys
import threading

import pytest

from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.storage import PAGE_SIZE, BufferPool, PageFile
from repro.util.items import prepare_transactions
from repro.util.queries import support_in_cfp_array

N_THREADS = 8
ITERATIONS = 400


@pytest.fixture
def fast_preemption():
    """Force bytecode-level preemption so races surface deterministically."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


def run_threads(worker):
    errors = []

    def wrapped(seed):
        try:
            worker(seed)
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(seed,)) for seed in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, f"worker raised under concurrency: {errors[:3]}"


class TestBufferPoolConcurrency:
    N_PAGES = 16

    def test_concurrent_gets_preserve_stat_conservation(
        self, tmp_path, fast_preemption
    ):
        with PageFile.create(tmp_path / "data.pf") as pagefile:
            for page_no in range(self.N_PAGES):
                pagefile.append(bytes([page_no]) * PAGE_SIZE)
            # Capacity far below the page count: every thread churns the
            # LRU, so gets, faults and evictions interleave constantly.
            pool = BufferPool(pagefile, capacity_pages=4)

            def worker(seed):
                rng = random.Random(seed)
                for __ in range(ITERATIONS):
                    page_no = rng.randrange(self.N_PAGES)
                    data = pool.get_page(page_no)
                    assert data[0] == page_no

            run_threads(worker)

            stats = pool.stats
            assert stats.hits + stats.faults == N_THREADS * ITERATIONS
            assert pool.resident_pages() <= pool.capacity_pages

    def test_concurrent_range_reads_return_correct_bytes(
        self, tmp_path, fast_preemption
    ):
        with PageFile.create(tmp_path / "data.pf") as pagefile:
            for page_no in range(self.N_PAGES):
                pagefile.append(bytes([page_no]) * PAGE_SIZE)
            pool = BufferPool(pagefile, capacity_pages=3)

            def worker(seed):
                rng = random.Random(1000 + seed)
                for __ in range(ITERATIONS // 4):
                    page_no = rng.randrange(self.N_PAGES - 1)
                    # Straddle a page boundary: two pages per read.
                    data = pool.read(page_no * PAGE_SIZE + PAGE_SIZE // 2, PAGE_SIZE)
                    assert data[: PAGE_SIZE // 2] == bytes([page_no]) * (PAGE_SIZE // 2)
                    assert data[PAGE_SIZE // 2 :] == bytes([page_no + 1]) * (
                        PAGE_SIZE // 2
                    )

            run_threads(worker)
            assert pool.stats.accesses == N_THREADS * (ITERATIONS // 4) * 2


class TestSubarrayCacheConcurrency:
    def test_raw_cache_accounting_under_contention(self, fast_preemption):
        """Unit-level hammer: the lookup/insert/evict accounting conserves.

        Drives ``get``/``put`` directly (no decode work between cache
        touches, unlike the array-level tests) so the critical sections
        collide constantly — the distilled version of what a thread
        executor does to one long-lived serving array's cache.
        """
        from repro.core.cfp_array import DecodedSubarray, _SubarrayCache

        n_ranks = 24
        charge = 64
        entries = {
            rank: DecodedSubarray((rank,), (rank,), (0,), (1,))
            for rank in range(1, n_ranks + 1)
        }
        lookups_per_thread = 8000

        # The lost-update window is two bytecodes wide, so one hammer
        # round can get lucky; every round must conserve independently.
        for round_no in range(4):
            # Room for only a third of the entries: constant eviction churn.
            cache = _SubarrayCache(budget_bytes=charge * n_ranks // 3)

            def worker(seed):
                rng = random.Random(round_no * N_THREADS + seed)
                for __ in range(lookups_per_thread):
                    rank = rng.randrange(1, n_ranks + 1)
                    if cache.get(rank) is None:
                        cache.put(rank, entries[rank], charge)

            run_threads(worker)

            counts = cache.counts()
            assert counts["hits"] + counts["misses"] == N_THREADS * lookups_per_thread
            assert cache.used_bytes == sum(c for __, c in cache._entries.values())
            assert cache.used_bytes <= cache.budget_bytes

    @pytest.fixture
    def array(self):
        database = [
            [item for item in range(1, 13) if (txn + item) % 3 != 0]
            for txn in range(60)
        ]
        table, transactions = prepare_transactions(database, 2)
        array = convert(TernaryCfpTree.from_rank_transactions(transactions, len(table)))
        # A budget that holds only part of the subarrays: every thread
        # drives the eviction sweep against the others' recency bumps.
        budget = max(64, len(array.buffer) // 3)
        array.set_cache_budget(budget)
        return array

    def test_concurrent_subarray_decodes_keep_accounting(self, array, fast_preemption):
        n_ranks = array.n_ranks
        expected = [None] + [
            array.subarray_columns(rank).triples for rank in range(1, n_ranks + 1)
        ]

        def worker(seed):
            rng = random.Random(seed)
            for __ in range(ITERATIONS):
                rank = rng.randrange(1, n_ranks + 1)
                assert array.subarray_columns(rank).triples == expected[rank]

        run_threads(worker)

        cache = array._cache
        counts = cache.counts()
        # The priming pass above plus every worker lookup goes through the
        # cache: each is exactly one hit or one miss, never lost.
        assert counts["hits"] + counts["misses"] == n_ranks + N_THREADS * ITERATIONS
        assert cache.used_bytes == sum(
            charge for __, charge in cache._entries.values()
        )
        assert cache.used_bytes <= cache.budget_bytes

    def test_concurrent_support_queries_agree(self, array, fast_preemption):
        """The serving hot path end to end: shared array, many threads."""
        queries = [(rank, rank + 1) for rank in range(1, array.n_ranks)]
        expected = {q: support_in_cfp_array(array, q) for q in queries}

        def worker(seed):
            rng = random.Random(seed)
            for __ in range(ITERATIONS // 4):
                query = queries[rng.randrange(len(queries))]
                assert support_in_cfp_array(array, query) == expected[query]

        run_threads(worker)


class TestSpilledArrayConcurrency:
    """Hammer a *spilled* array: pool faults and cache evictions mid-read.

    The earlier classes drive the pool and the decoded cache separately;
    here both layers churn at once over a real on-disk array. The pool is
    sized far below the file and the decoded cache far below the decoded
    working set, so a thread's backward traversal routinely loses its
    pages *and* its decoded entry to other threads between two hops —
    every answer must still match the in-memory reference.
    """

    @pytest.fixture
    def spilled(self, tmp_path):
        # Random transactions (fixed seed) so paths do not collapse into a
        # handful of shared prefixes: the array must span several pages
        # for a 2-page pool to actually thrash.
        rng = random.Random(42)
        database = [
            rng.sample(range(1, 40), rng.randint(4, 12)) for _ in range(600)
        ]
        table, transactions = prepare_transactions(database, 2)
        reference = convert(
            TernaryCfpTree.from_rank_transactions(transactions, len(table))
        )
        path = tmp_path / "spilled.cfpa"
        from repro.storage import save_cfp_array

        save_cfp_array(reference, path)
        return reference, path

    def test_pooled_reads_with_eviction_mid_read(self, spilled, fast_preemption):
        from repro.storage import PooledCfpArray

        reference, path = spilled
        expected = [None] + [
            reference.subarray_columns(rank).triples
            for rank in range(1, reference.n_ranks + 1)
        ]
        queries = [(rank, rank + 1) for rank in range(1, reference.n_ranks)]
        supports = {q: support_in_cfp_array(reference, q) for q in queries}
        decoded_budget = max(
            64,
            sum(
                reference.subarray_columns(rank).decoded_bytes
                for rank in range(1, reference.n_ranks + 1)
            )
            // 4,
        )
        with PooledCfpArray(
            path, pool_pages=2, cache_budget=decoded_budget
        ) as array:

            def worker(seed):
                rng = random.Random(seed)
                for __ in range(ITERATIONS // 4):
                    rank = rng.randrange(1, array.n_ranks + 1)
                    assert array.subarray_columns(rank).triples == expected[rank]
                    query = queries[rng.randrange(len(queries))]
                    assert support_in_cfp_array(array, query) == supports[query]

            run_threads(worker)

            stats = array.pool.stats
            assert stats.hits + stats.faults == stats.accesses
            assert array.pool.resident_pages() <= array.pool.capacity_pages
            cache = array._cache
            assert cache.used_bytes == sum(
                charge for __, charge in cache._entries.values()
            )
            assert cache.used_bytes <= cache.budget_bytes
            # The budgets really were under pressure, or this test
            # degenerates into the all-resident case.
            assert stats.evictions > 0
            assert cache.counts()["evictions"] > 0

    def test_partitioned_reads_with_prefetch_churn(self, spilled, fast_preemption):
        from repro.storage import PartitionedCfpArray, save_cfp_array_partitioned

        reference, path = spilled
        part_path = str(path) + ".v3"
        save_cfp_array_partitioned(reference, part_path, partition_bytes=PAGE_SIZE)
        expected = [None] + [
            reference.subarray_columns(rank).triples
            for rank in range(1, reference.n_ranks + 1)
        ]
        with PartitionedCfpArray(
            part_path, pool_pages=2, cache_budget=1 << 12, hot_bytes=256
        ) as array:
            n_parts = len(array.partitions)

            def worker(seed):
                rng = random.Random(seed)
                for step in range(ITERATIONS // 4):
                    # Interleave demand reads with prefetch requests for
                    # random partitions: read-ahead inserts race demand
                    # faults and evictions for the same few frames.
                    if step % 7 == 0:
                        array.begin_partition(rng.randrange(n_parts))
                    rank = rng.randrange(1, array.n_ranks + 1)
                    assert array.subarray_columns(rank).triples == expected[rank]

            run_threads(worker)
            array.prefetch_drain()

            stats = array.pool.stats
            assert stats.hits + stats.faults == stats.accesses
            assert array.pool.resident_pages() <= array.pool.capacity_pages
            # BUF003 conservation with prefetch in the mix.
            assert (
                stats.faults + stats.prefetched - stats.evictions
                == array.pool.resident_pages()
            )
