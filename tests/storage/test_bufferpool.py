"""Regression tests for BufferPool.read range validation and metrics.

The bug: ``read()`` validated only negative offsets/sizes, so a range
past EOF faulted pages one by one until the page file raised its own
error mid-loop — after the pool's statistics had already counted the
partial walk. The fix validates the whole range up front and raises a
:class:`BufferPoolError` with the stats untouched.
"""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.storage import PAGE_SIZE, BufferPool, PageFile
from repro.storage.bufferpool import BufferPoolError


@pytest.fixture
def pool(tmp_path):
    with PageFile.create(tmp_path / "data.pf") as pagefile:
        pagefile.append(b"A" * PAGE_SIZE)
        pagefile.append(b"B" * PAGE_SIZE)
        yield BufferPool(pagefile, capacity_pages=2)


class TestReadBoundaries:
    def test_read_up_to_exact_page_edge(self, pool):
        assert pool.read(0, PAGE_SIZE) == b"A" * PAGE_SIZE

    def test_read_second_page_exactly(self, pool):
        assert pool.read(PAGE_SIZE, PAGE_SIZE) == b"B" * PAGE_SIZE

    def test_read_last_byte(self, pool):
        assert pool.read(2 * PAGE_SIZE - 1, 1) == b"B"

    def test_read_whole_file(self, pool):
        data = pool.read(0, 2 * PAGE_SIZE)
        assert len(data) == 2 * PAGE_SIZE

    def test_zero_size_read_at_eof(self, pool):
        assert pool.read(2 * PAGE_SIZE, 0) == b""

    def test_one_byte_past_end_raises(self, pool):
        with pytest.raises(BufferPoolError, match="past the file"):
            pool.read(2 * PAGE_SIZE - 1, 2)

    def test_offset_at_eof_with_size_raises(self, pool):
        with pytest.raises(BufferPoolError):
            pool.read(2 * PAGE_SIZE, 1)

    def test_failed_read_leaves_stats_untouched(self, pool):
        # Regression: the range is rejected before any page is fetched,
        # so an invalid request must not move hits/faults — previously
        # pages 0 and 1 were faulted in before page 2 blew up.
        with pytest.raises(BufferPoolError):
            pool.read(0, 3 * PAGE_SIZE)
        assert pool.stats.hits == 0
        assert pool.stats.faults == 0
        assert pool.resident_pages() == 0

    def test_negative_range_still_rejected(self, pool):
        with pytest.raises(BufferPoolError):
            pool.read(-1, 4)
        with pytest.raises(BufferPoolError):
            pool.read(0, -4)


class TestPublishMetrics:
    def test_counters_published_to_registry(self, pool):
        pool.read(0, PAGE_SIZE)
        pool.read(0, PAGE_SIZE)  # second pass hits the cached page
        registry = MetricsRegistry()
        pool.publish_metrics(registry)
        assert registry.get("bufferpool.hits") == 1
        assert registry.get("bufferpool.faults") == 1
        assert registry.get("bufferpool.evictions") == 0
        assert registry.get("pagefile.reads") == 1

    def test_defaults_to_process_registry(self, pool):
        from repro import obs

        before = obs.metrics.get("bufferpool.faults")
        pool.read(0, PAGE_SIZE)
        pool.publish_metrics()
        try:
            assert obs.metrics.get("bufferpool.faults") == before + 1
        finally:
            obs.metrics.reset()
