"""Transient-read retry in the buffer pool (and its fault-injection site)."""

from __future__ import annotations

import pytest

from repro import faultinject, obs
from repro.errors import InjectedFault, TransientIOError
from repro.storage.bufferpool import BufferPool
from repro.storage.pagefile import PAGE_SIZE, PageFile


@pytest.fixture(autouse=True)
def _fast_and_clean(monkeypatch):
    monkeypatch.setenv("REPRO_IO_BACKOFF", "0")  # no real sleeping in tests
    faultinject.reset()
    yield
    faultinject.reset()
    obs.metrics.reset()


@pytest.fixture
def pool(tmp_path):
    path = tmp_path / "pages.bin"
    with PageFile.create(path) as pf:
        for page_no in range(4):
            pf.append(bytes([page_no]) * 16)
    pagefile = PageFile.open_readonly(path)
    yield BufferPool(pagefile, capacity_pages=2)
    pagefile.close()


class TestTransientRetry:
    def test_flaky_read_is_retried_to_success(self, pool):
        faultinject.install("pagefile.read:flake:times=2")
        data = pool.get_page(1)
        assert data == (b"\x01" * 16).ljust(PAGE_SIZE, b"\x00")
        assert pool.stats.read_retries == 2
        assert pool.stats.faults == 1  # one logical fault despite retries

    def test_cached_pages_bypass_the_disk_entirely(self, pool):
        pool.get_page(1)
        faultinject.install("pagefile.read:flake")
        assert pool.get_page(1)[0] == 1  # hit: no read, no fault to fire
        assert pool.stats.read_retries == 0

    def test_budget_exhaustion_reraises_the_original_error(self, pool, monkeypatch):
        monkeypatch.setenv("REPRO_IO_RETRIES", "2")
        faultinject.install("pagefile.read:flake")
        with pytest.raises(TransientIOError):
            pool.get_page(0)
        assert pool.stats.read_retries == 2

    def test_zero_retries_disables_retrying(self, pool, monkeypatch):
        monkeypatch.setenv("REPRO_IO_RETRIES", "0")
        faultinject.install("pagefile.read:flake:times=1")
        with pytest.raises(TransientIOError):
            pool.get_page(0)
        assert pool.stats.read_retries == 0

    def test_hard_faults_are_not_retried(self, pool):
        # A deterministic (non-transient) error must escape on the first
        # attempt — retrying it would just stall real corruption reports.
        faultinject.install("pagefile.read:raise")
        with pytest.raises(InjectedFault):
            pool.get_page(0)
        assert pool.stats.read_retries == 0

    def test_page_match_condition_scopes_the_fault(self, pool):
        faultinject.install("pagefile.read:flake:page=2,times=1")
        assert pool.get_page(0)[0] == 0  # untouched page reads cleanly
        assert pool.stats.read_retries == 0
        assert pool.get_page(2)[0] == 2  # targeted page flakes, then retries
        assert pool.stats.read_retries > 0

    def test_retries_are_published(self, pool):
        faultinject.install("pagefile.read:flake:times=1")
        pool.get_page(0)
        obs.metrics.reset()
        pool.publish_metrics()
        assert obs.metrics.get("bufferpool.read_retries") == 1
