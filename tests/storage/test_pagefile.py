"""Unit tests for the page file and buffer pool."""

import pytest

from repro.storage import PAGE_SIZE, BufferPool, PageFile
from repro.storage.bufferpool import BufferPoolError
from repro.storage.pagefile import PageFileError


@pytest.fixture
def pagefile(tmp_path):
    with PageFile.create(tmp_path / "data.pf") as pf:
        yield pf


class TestPageFile:
    def test_append_and_read(self, pagefile):
        page_no = pagefile.append(b"hello")
        assert page_no == 0
        data = pagefile.read_page(0)
        assert len(data) == PAGE_SIZE
        assert data.startswith(b"hello")
        assert data[5:] == bytes(PAGE_SIZE - 5)

    def test_write_page(self, pagefile):
        pagefile.append()
        pagefile.write_page(0, b"xyz")
        assert pagefile.read_page(0).startswith(b"xyz")

    def test_append_blob_spans_pages(self, pagefile):
        blob = bytes(range(256)) * 50  # 12800 bytes -> 4 pages
        first, count = pagefile.append_blob(blob)
        assert (first, count) == (0, 4)
        rejoined = b"".join(pagefile.read_page(i) for i in range(4))
        assert rejoined[: len(blob)] == blob

    def test_empty_blob_occupies_one_page(self, pagefile):
        __, count = pagefile.append_blob(b"")
        assert count == 1

    def test_out_of_range(self, pagefile):
        with pytest.raises(PageFileError):
            pagefile.read_page(0)
        pagefile.append()
        with pytest.raises(PageFileError):
            pagefile.read_page(1)
        with pytest.raises(PageFileError):
            pagefile.write_page(5, b"")

    def test_oversized_page(self, pagefile):
        with pytest.raises(PageFileError):
            pagefile.append(bytes(PAGE_SIZE + 1))

    def test_readonly(self, tmp_path):
        path = tmp_path / "ro.pf"
        with PageFile.create(path) as pf:
            pf.append(b"abc")
        with PageFile.open_readonly(path) as pf:
            assert pf.page_count == 1
            assert pf.read_page(0).startswith(b"abc")
            with pytest.raises(PageFileError):
                pf.append(b"no")

    def test_closed_file(self, tmp_path):
        pf = PageFile.create(tmp_path / "x.pf")
        pf.close()
        with pytest.raises(PageFileError):
            pf.read_page(0)

    def test_io_counters(self, pagefile):
        pagefile.append(b"a")
        pagefile.read_page(0)
        pagefile.read_page(0)
        assert pagefile.writes == 1
        assert pagefile.reads == 2


class TestBufferPool:
    def _file_with_pages(self, pagefile, n):
        for i in range(n):
            pagefile.append(bytes([i]) * 8)
        return pagefile

    def test_hit_after_fault(self, pagefile):
        self._file_with_pages(pagefile, 3)
        pool = BufferPool(pagefile, capacity_pages=2)
        pool.get_page(0)
        pool.get_page(0)
        assert pool.stats.faults == 1
        assert pool.stats.hits == 1

    def test_lru_eviction(self, pagefile):
        self._file_with_pages(pagefile, 3)
        pool = BufferPool(pagefile, capacity_pages=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(2)  # evicts 0
        assert pool.stats.evictions == 1
        pool.get_page(1)  # still resident
        assert pool.stats.hits == 1
        pool.get_page(0)  # faults again
        assert pool.stats.faults == 4

    def test_access_refreshes_lru(self, pagefile):
        self._file_with_pages(pagefile, 3)
        pool = BufferPool(pagefile, capacity_pages=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(0)  # refresh 0 -> 1 becomes LRU
        pool.get_page(2)  # evicts 1
        pool.get_page(0)
        assert pool.stats.hits == 2

    def test_pinned_pages_survive(self, pagefile):
        self._file_with_pages(pagefile, 4)
        pool = BufferPool(pagefile, capacity_pages=2)
        pool.pin(0)
        pool.get_page(1)
        pool.get_page(2)
        pool.get_page(3)
        pool.get_page(0)
        assert pool.stats.hits >= 1  # pinned page never left

    def test_all_pinned_raises(self, pagefile):
        self._file_with_pages(pagefile, 3)
        pool = BufferPool(pagefile, capacity_pages=1)
        pool.pin(0)
        with pytest.raises(BufferPoolError):
            pool.get_page(1)

    def test_unpin_validation(self, pagefile):
        self._file_with_pages(pagefile, 1)
        pool = BufferPool(pagefile, capacity_pages=1)
        with pytest.raises(BufferPoolError):
            pool.unpin(0)
        pool.pin(0)
        pool.unpin(0)
        with pytest.raises(BufferPoolError):
            pool.unpin(0)

    def test_cross_page_read(self, pagefile):
        pagefile.append(b"A" * PAGE_SIZE)
        pagefile.append(b"B" * PAGE_SIZE)
        pool = BufferPool(pagefile, capacity_pages=2)
        data = pool.read(PAGE_SIZE - 3, 6)
        assert data == b"AAABBB"

    def test_sequential_scan_faults_once_per_page(self, pagefile):
        self._file_with_pages(pagefile, 8)
        pool = BufferPool(pagefile, capacity_pages=2)
        pool.read(0, 8 * PAGE_SIZE)
        assert pool.stats.faults == 8

    def test_capacity_validation(self, pagefile):
        with pytest.raises(BufferPoolError):
            BufferPool(pagefile, capacity_pages=0)

    def test_invalid_range(self, pagefile):
        self._file_with_pages(pagefile, 1)
        pool = BufferPool(pagefile, capacity_pages=1)
        with pytest.raises(BufferPoolError):
            pool.read(-1, 4)

    def test_hit_ratio(self, pagefile):
        self._file_with_pages(pagefile, 1)
        pool = BufferPool(pagefile, capacity_pages=1)
        assert pool.stats.hit_ratio == 0.0
        pool.get_page(0)
        pool.get_page(0)
        pool.get_page(0)
        assert pool.stats.hit_ratio == pytest.approx(2 / 3)
