"""Tests for CFP persistence and out-of-core mining."""

import pytest

from repro.core.cfp_growth import mine_array, mine_rank_transactions
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.fptree.growth import CountCollector, ListCollector
from repro.storage import (
    DiskCfpArray,
    load_cfp_array,
    load_cfp_tree,
    save_cfp_array,
    save_cfp_tree,
)
from repro.storage.cfp_store import StorageFormatError
from repro.util.items import prepare_transactions
from tests.conftest import normalize, random_database


@pytest.fixture(scope="module")
def built():
    db = random_database(11, n_transactions=150, n_items=25, max_length=12)
    table, transactions = prepare_transactions(db, 3)
    tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
    return table, transactions, tree, convert(tree)


class TestArrayRoundtrip:
    def test_load_equals_original(self, built, tmp_path):
        __, __, __, array = built
        path = tmp_path / "a.cfpa"
        size = save_cfp_array(array, path)
        assert size >= len(array.buffer)
        loaded = load_cfp_array(path)
        assert loaded.n_ranks == array.n_ranks
        assert loaded.starts == array.starts
        assert bytes(loaded.buffer) == bytes(array.buffer)

    def test_empty_array(self, tmp_path):
        array = convert(TernaryCfpTree(3))
        path = tmp_path / "empty.cfpa"
        save_cfp_array(array, path)
        loaded = load_cfp_array(path)
        assert loaded.node_count == 0

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.cfpa"
        path.write_bytes(b"NOPE" + bytes(4096 - 4))
        with pytest.raises(StorageFormatError):
            load_cfp_array(path)

    def test_large_index_spans_header_pages(self, tmp_path):
        # n_ranks large enough that the starts array exceeds one page.
        n_ranks = 1000
        tree = TernaryCfpTree(n_ranks)
        tree.insert([1, 500, 1000])
        array = convert(tree)
        path = tmp_path / "wide.cfpa"
        save_cfp_array(array, path)
        loaded = load_cfp_array(path)
        assert loaded.starts == array.starts
        assert bytes(loaded.buffer) == bytes(array.buffer)


class TestDiskCfpArray:
    def test_traversals_match_memory(self, built, tmp_path):
        __, __, __, array = built
        path = tmp_path / "a.cfpa"
        save_cfp_array(array, path)
        with DiskCfpArray(path, pool_pages=4) as disk:
            assert list(disk.active_ranks_descending()) == list(
                array.active_ranks_descending()
            )
            for rank in array.active_ranks_descending():
                assert disk.rank_support(rank) == array.rank_support(rank)
                disk_nodes = list(disk.iter_subarray(rank))
                mem_nodes = list(array.iter_subarray(rank))
                assert disk_nodes == mem_nodes
                for local, __, __, __ in mem_nodes:
                    assert disk.path_ranks(rank, local) == array.path_ranks(
                        rank, local
                    )

    def test_out_of_core_mining_matches(self, built, tmp_path):
        table, transactions, __, array = built
        path = tmp_path / "a.cfpa"
        save_cfp_array(array, path)
        in_memory = ListCollector()
        mine_array(array, 3, in_memory)
        with DiskCfpArray(path, pool_pages=2) as disk:
            on_disk = ListCollector()
            mine_array(disk, 3, on_disk)
        assert normalize(in_memory.itemsets) == normalize(on_disk.itemsets)

    def test_small_pool_faults_more(self, built, tmp_path):
        __, __, __, array = built
        path = tmp_path / "a.cfpa"
        save_cfp_array(array, path)
        faults = {}
        for pool_pages in (2, 64):
            with DiskCfpArray(path, pool_pages=pool_pages) as disk:
                mine_array(disk, 3, CountCollector())
                faults[pool_pages] = disk.pool.stats.faults
        assert faults[2] >= faults[64]
        assert faults[64] >= 1

    def test_memory_bytes_is_pool_plus_index(self, built, tmp_path):
        __, __, __, array = built
        path = tmp_path / "a.cfpa"
        save_cfp_array(array, path)
        with DiskCfpArray(path, pool_pages=8) as disk:
            assert disk.memory_bytes == 8 * 4096 + (disk.n_ranks + 1) * 5


class TestTreeCheckpoint:
    def test_roundtrip_preserves_logical_tree(self, built, tmp_path):
        __, __, tree, __ = built
        path = tmp_path / "t.cfpt"
        save_cfp_tree(tree, path)
        loaded = load_cfp_tree(path)
        assert loaded.node_count == tree.node_count
        assert loaded.transaction_count == tree.transaction_count
        original = sorted(tree.iter_nodes_with_parent())
        restored = sorted(loaded.iter_nodes_with_parent())
        assert original == restored

    def test_inserts_continue_after_restore(self, tmp_path):
        tree = TernaryCfpTree(6)
        tree.insert([1, 2, 3])
        tree.insert([1, 4])
        path = tmp_path / "t.cfpt"
        save_cfp_tree(tree, path)
        loaded = load_cfp_tree(path)
        loaded.insert([1, 2, 5])
        loaded.insert([6])
        reference = TernaryCfpTree(6)
        for ranks in ([1, 2, 3], [1, 4], [1, 2, 5], [6]):
            reference.insert(ranks)
        assert sorted(loaded.iter_nodes_with_parent()) == sorted(
            reference.iter_nodes_with_parent()
        )

    def test_checkpointed_build_mines_identically(self, tmp_path):
        db = random_database(5, n_transactions=80, n_items=15, max_length=9)
        table, transactions = prepare_transactions(db, 2)
        half = len(transactions) // 2
        tree = TernaryCfpTree.from_rank_transactions(transactions[:half], len(table))
        path = tmp_path / "t.cfpt"
        save_cfp_tree(tree, path)
        resumed = load_cfp_tree(path)
        for ranks in transactions[half:]:
            resumed.insert(ranks)
        resumed_count = CountCollector()
        array = convert(resumed)
        mine_array(array, 2, resumed_count)
        direct = mine_rank_transactions(transactions, len(table), 2, CountCollector())
        assert resumed_count.count == direct.count

    def test_config_preserved(self, tmp_path):
        tree = TernaryCfpTree(4, enable_chains=False, max_chain_length=3)
        tree.insert([1, 2, 3])
        path = tmp_path / "t.cfpt"
        save_cfp_tree(tree, path)
        loaded = load_cfp_tree(path)
        assert not loaded.enable_chains
        assert loaded.max_chain_length == 3

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.cfpt"
        path.write_bytes(b"XXXX" + bytes(4096 - 4))
        with pytest.raises(StorageFormatError):
            load_cfp_tree(path)

    def test_free_queues_survive(self, tmp_path):
        # Force frees (via promotions/resizes), checkpoint, and verify the
        # allocator reuses freed chunks after restore.
        tree = TernaryCfpTree(10)
        for ranks in ([1], [1, 2], [1, 2, 3], [2], [2, 3]):
            tree.insert(ranks)
        path = tmp_path / "t.cfpt"
        save_cfp_tree(tree, path)
        loaded = load_cfp_tree(path)
        assert loaded.arena.stats().free_bytes == tree.arena.stats().free_bytes
        loaded.insert([5, 6, 7])
        assert loaded.to_logical().node_count == loaded.node_count
