"""Read-ahead: accounting, the prefetch thread, and its chaos coverage.

The ``pagefile.prefetch`` fault site fires at the top of
:meth:`BufferPool.prefetch_pages` — on the *prefetch thread* when the
request came through a :class:`Prefetcher`. The contract under chaos:

* ``flake`` (transient I/O): the thread notes the error and keeps
  serving later requests — one bad batch must not end read-ahead.
* ``raise`` (hard fault): the thread exits — the in-process analog of a
  killed helper. ``request()`` then returns ``False`` and every read
  falls back to synchronous demand paging.

In both cases answers are byte-identical to the in-core mine: prefetch
is pure opportunism, never a correctness dependency.
"""

from __future__ import annotations

import random

import pytest

from repro import faultinject, obs
from repro.core.cfp_growth import mine_array, mine_array_partitioned
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.fptree.growth import ListCollector
from repro.storage import (
    PAGE_SIZE,
    BufferPool,
    PageFile,
    PartitionedCfpArray,
    Prefetcher,
    save_cfp_array_partitioned,
)
from repro.util.items import prepare_transactions

MIN_SUPPORT = 3


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.setenv("REPRO_IO_BACKOFF", "0")
    faultinject.reset()
    yield
    faultinject.reset()
    obs.metrics.reset()


@pytest.fixture(scope="module")
def array():
    rng = random.Random(19)
    database = [
        rng.sample(range(45), rng.randint(3, 10)) for __ in range(700)
    ]
    table, transactions = prepare_transactions(database, 2)
    return convert(TernaryCfpTree.from_rank_transactions(transactions, len(table)))


@pytest.fixture
def store(array, tmp_path):
    path = tmp_path / "pf.cfpa"
    save_cfp_array_partitioned(array, path, partition_bytes=PAGE_SIZE)
    return path


@pytest.fixture
def reference(array):
    collector = ListCollector()
    mine_array(array, MIN_SUPPORT, collector)
    return collector.itemsets


class TestPrefetchAccounting:
    def _pool(self, tmp_path, n_pages=16, capacity=8):
        path = tmp_path / "pages.bin"
        with PageFile.create(path) as pf:
            for page_no in range(n_pages):
                pf.append(bytes([page_no]) * 32)
        pagefile = PageFile.open_readonly(path)
        return pagefile, BufferPool(pagefile, capacity_pages=capacity)

    def test_prefetched_pages_hit_without_faulting(self, tmp_path):
        pagefile, pool = self._pool(tmp_path)
        try:
            assert pool.prefetch_pages(0, 4) == 4
            assert pool.stats.prefetched == 4
            assert pool.stats.faults == 0
            for page_no in range(4):
                assert pool.get_page(page_no)[0] == page_no
            assert pool.stats.prefetch_hits == 4
            assert pool.stats.faults == 0
            # bytes_read counts the prefetch I/O even though no demand
            # fault happened.
            assert pool.stats.bytes_read == 4 * PAGE_SIZE
        finally:
            pagefile.close()

    def test_unused_prefetch_counts_as_wasted(self, tmp_path):
        pagefile, pool = self._pool(tmp_path, capacity=4)
        try:
            pool.prefetch_pages(0, 4)
            # Demand-read the other pages: the untouched prefetched
            # frames are evicted unused.
            for page_no in range(8, 14):
                pool.get_page(page_no)
            assert pool.stats.prefetch_wasted > 0
            stats = pool.stats
            assert (
                stats.faults + stats.prefetched - stats.evictions
                == pool.resident_pages()
            )
        finally:
            pagefile.close()

    def test_prefetch_capped_at_half_capacity(self, tmp_path):
        pagefile, pool = self._pool(tmp_path, n_pages=16, capacity=8)
        try:
            loaded = pool.prefetch_pages(0, 16)
            assert loaded <= 4  # capacity // 2: read-ahead may not evict
            # the demand working set wholesale
        finally:
            pagefile.close()


class TestPrefetcherThread:
    def test_request_and_drain(self, tmp_path):
        pagefile, pool = TestPrefetchAccounting()._pool(tmp_path)
        prefetcher = Prefetcher(pool)
        try:
            assert prefetcher.request(0, 4)
            prefetcher.drain()
            assert pool.stats.prefetched == 4
            assert pool.stats.prefetch_requests == 1
        finally:
            prefetcher.close()
            pagefile.close()

    def test_flake_keeps_thread_alive(self, tmp_path, store, reference):
        faultinject.install("pagefile.prefetch:flake:times=2")
        with PartitionedCfpArray(store, pool_pages=4) as disk:
            got = ListCollector()
            mine_array_partitioned(disk, MIN_SUPPORT, got)
            disk.prefetch_drain()
            assert disk._prefetcher is not None and disk._prefetcher.alive
            assert disk.pool.stats.prefetch_errors >= 1
        assert got.itemsets == reference

    def test_hard_fault_kills_thread_falls_back_sync(self, store, reference):
        faultinject.install("pagefile.prefetch:raise")
        with PartitionedCfpArray(store, pool_pages=4) as disk:
            got = ListCollector()
            mine_array_partitioned(disk, MIN_SUPPORT, got)
            disk.prefetch_drain()
            prefetcher = disk._prefetcher
            assert prefetcher is not None and not prefetcher.alive
            # A dead thread refuses new work instead of queueing it.
            assert not prefetcher.request(0, 1)
            assert disk.pool.stats.prefetch_errors >= 1
            assert disk.pool.stats.prefetched == 0
            # Demand paging carried the whole mine.
            assert disk.pool.stats.faults > 0
        assert got.itemsets == reference

    def test_disabled_by_env(self, store, reference, monkeypatch):
        monkeypatch.setenv("REPRO_PREFETCH", "0")
        with PartitionedCfpArray(store, pool_pages=4) as disk:
            assert disk._prefetcher is None
            got = ListCollector()
            mine_array_partitioned(disk, MIN_SUPPORT, got)
            assert disk.pool.stats.prefetched == 0
        assert got.itemsets == reference

    def test_depth_env_widens_readahead(self, store, reference, monkeypatch):
        monkeypatch.setenv("REPRO_PREFETCH_DEPTH", "3")
        with PartitionedCfpArray(store, pool_pages=8) as disk:
            assert disk._prefetch_depth == 3
            got = ListCollector()
            mine_array_partitioned(disk, MIN_SUPPORT, got)
            disk.prefetch_drain()
            assert disk.pool.stats.prefetch_requests > 0
        assert got.itemsets == reference

    def test_prefetch_improves_hit_rate(self, store):
        """The counter the bench gates on: read-ahead must actually hit."""
        with PartitionedCfpArray(store, pool_pages=8) as disk:
            got = ListCollector()
            mine_array_partitioned(disk, MIN_SUPPORT, got)
            disk.prefetch_drain()
            stats = disk.pool.stats
        if stats.prefetched:
            assert stats.prefetch_hits > 0
