"""Property test: the disk-backed CFP-array equals the in-memory one."""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cfp_growth import mine_array
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.fptree.growth import ListCollector
from repro.storage import DiskCfpArray, save_cfp_array
from repro.util.items import prepare_transactions
from tests.conftest import db_strategy, normalize


@settings(max_examples=20, deadline=None)
@given(db_strategy, st.integers(min_value=1, max_value=4))
def test_disk_mining_equals_memory_mining(database, pool_pages):
    table, transactions = prepare_transactions(database, 1)
    tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
    array = convert(tree)
    memory = ListCollector()
    mine_array(array, 1, memory)
    fd, path = tempfile.mkstemp(suffix=".cfpa")
    os.close(fd)
    try:
        save_cfp_array(array, path)
        with DiskCfpArray(path, pool_pages=pool_pages) as disk:
            disk_collector = ListCollector()
            mine_array(disk, 1, disk_collector)
    finally:
        os.unlink(path)
    assert normalize(disk_collector.itemsets) == normalize(memory.itemsets)
