"""Unit tests for the tracer, the metric registry, and trace-file I/O."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.obs import NULL_SPAN, Tracer, get_tracer, maybe_span, set_tracer
from repro.obs.registry import MetricsRegistry
from repro.obs.report import (
    TraceError,
    format_trace_summary,
    is_trace_file,
    meter_from_trace,
    read_trace,
    summarize_spans,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def check_trace():
    spec = importlib.util.spec_from_file_location(
        "check_trace", REPO_ROOT / "tools" / "check_trace.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop(spec.name, None)


class TestSpans:
    def test_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == outer.span_id
        # Children close first, so they precede their parent in the list.
        assert [r.name for r in tracer.records] == ["inner", "outer"]

    def test_attrs_set_and_add(self):
        tracer = Tracer()
        with tracer.span("s", fixed=1) as span:
            span.set("k", "v")
            span.add("n")
            span.add("n", 4)
        record = tracer.records[0]
        assert record.attrs == {"fixed": 1, "k": "v", "n": 5}

    def test_span_records_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert [r.name for r in tracer.records] == ["doomed"]
        assert tracer.current_span_id is None

    def test_complete_span_records_root_without_stack(self):
        import time

        tracer = Tracer()
        started = time.perf_counter()
        with tracer.span("open"):
            record = tracer.complete_span("late", started, {"op": "x"})
            # The retroactive span must not become the current parent.
            with tracer.span("child"):
                pass
        assert record.parent_id is None
        assert record.attrs == {"op": "x"}
        assert record.duration_s >= 0
        by_name = {r.name: r for r in tracer.records}
        assert by_name["child"].parent_id == by_name["open"].span_id
        ids = [r.span_id for r in tracer.records]
        assert len(set(ids)) == len(ids)

    def test_durations_non_negative_and_ids_unique(self):
        tracer = Tracer()
        for __ in range(5):
            with tracer.span("s"):
                pass
        ids = [r.span_id for r in tracer.records]
        assert len(set(ids)) == 5
        assert all(r.duration_s >= 0 for r in tracer.records)


class TestInstallation:
    def test_default_is_off(self):
        assert get_tracer() is None

    def test_set_returns_previous(self):
        first = Tracer()
        second = Tracer()
        assert set_tracer(first) is None
        assert set_tracer(second) is first
        assert get_tracer() is second
        set_tracer(None)

    def test_maybe_span_null_when_off(self):
        with maybe_span("anything") as span:
            assert span is NULL_SPAN
            span.set("k", 1)  # must be a silent no-op
            span.add("k")

    def test_maybe_span_records_when_on(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            with maybe_span("phase", a=1) as span:
                span.set("b", 2)
        finally:
            set_tracer(None)
        assert tracer.records[0].attrs == {"a": 1, "b": 2}


class TestIngest:
    def _worker_records(self, name):
        worker = Tracer()
        with worker.span(name, rank=7) as span:
            with worker.span("child"):
                pass
            span.set("meter", {"x": 1})
        return worker.export()

    def test_reparents_foreign_roots(self):
        parent = Tracer()
        with parent.span("mine_parallel") as pspan:
            parent.ingest(
                self._worker_records("mine_rank"),
                parent_id=pspan.span_id,
                worker=3,
            )
        by_name = {r.name: r for r in parent.records}
        assert by_name["mine_rank"].parent_id == pspan.span_id
        assert by_name["child"].parent_id == by_name["mine_rank"].span_id
        assert by_name["mine_rank"].worker == 3
        assert by_name["mine_parallel"].worker is None

    def test_ids_reassigned_without_collision(self):
        parent = Tracer()
        with parent.span("top"):
            pass
        parent.ingest(self._worker_records("a"))
        parent.ingest(self._worker_records("b"))
        ids = [r.span_id for r in parent.records]
        assert len(set(ids)) == len(ids)

    def test_fixed_order_is_deterministic(self):
        batches = [self._worker_records(f"rank{i}") for i in range(3)]

        def merged():
            parent = Tracer()
            with parent.span("root") as root:
                for worker, records in enumerate(batches):
                    parent.ingest(records, parent_id=root.span_id, worker=worker)
            return [
                (r.name, r.parent_id, r.worker, tuple(sorted(r.attrs)))
                for r in parent.records
            ]

        assert merged() == merged()


class TestRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.add("c")
        registry.add("c", 4)
        registry.set_gauge("g", 2.5)
        assert registry.get("c") == 5
        assert registry.get("missing") == 0
        assert registry.get_gauge("g") == 2.5
        snapshot = registry.snapshot()
        assert snapshot == {
            "counters": {"c": 5},
            "gauges": {"g": 2.5},
            "histograms": {},
        }
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_histograms(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 100.0):
            registry.observe("latency", value)
        histogram = registry.histogram("latency")
        assert histogram is not None
        assert histogram.count == 4
        assert histogram.min == 1.0
        assert histogram.max == 100.0
        # Percentiles are bucket-approximate but bounded by the extremes.
        assert 1.0 <= registry.percentile("latency", 0.5) <= 4.0
        assert registry.percentile("latency", 1.0) == 100.0
        assert registry.percentile("missing", 0.5) == 0.0
        summary = registry.histograms()["latency"]
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(106.0)
        assert summary["min"] == 1.0 and summary["max"] == 100.0
        assert summary["p50"] <= summary["p90"] <= summary["p99"] <= 100.0
        registry.reset()
        assert registry.histogram("latency") is None

    def test_histogram_empty_and_negative(self):
        registry = MetricsRegistry()
        registry.observe("h", -5.0)  # clamps to 0
        assert registry.histogram("h").snapshot()["max"] == 0.0
        assert registry.percentile("h", 0.99) == 0.0

    def test_ratio(self):
        registry = MetricsRegistry()
        registry.add("cache.hits", 3)
        registry.add("cache.misses", 1)
        assert registry.ratio(
            "cache.hits", "cache.hits", "cache.misses"
        ) == pytest.approx(0.75)
        assert registry.ratio("nope.hits", "nope.hits", "nope.misses") == 0.0


class TestTraceFileRoundtrip:
    def _write(self, tmp_path, with_metrics=True):
        tracer = Tracer()
        with tracer.span("build", ops=10, bytes_touched=100, peak_bytes=64):
            pass
        with tracer.span("mine_rank", ops=5, bytes_touched=7):
            pass
        registry = MetricsRegistry()
        registry.add("subarray_cache.hits", 8)
        registry.add("subarray_cache.misses", 2)
        registry.set_gauge("budget_bytes", 1024.0)
        path = tmp_path / "t.jsonl"
        tracer.write_jsonl(path, registry=registry if with_metrics else None)
        return path

    def test_roundtrip(self, tmp_path):
        path = self._write(tmp_path)
        assert is_trace_file(path)
        trace = read_trace(path)
        assert trace.meta["spans"] == 2
        assert {s["name"] for s in trace.spans} == {"build", "mine_rank"}
        assert trace.counters == {
            "subarray_cache.hits": 8,
            "subarray_cache.misses": 2,
        }
        assert trace.gauges == {"budget_bytes": 1024.0}

    def test_validator_accepts(self, tmp_path, check_trace):
        path = self._write(tmp_path)
        assert check_trace.validate_trace(path) == []

    def test_validator_rejects_corruption(self, tmp_path, check_trace):
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        # Drop the meta line: first record is now a span.
        (tmp_path / "no_meta.jsonl").write_text("\n".join(lines[1:]) + "\n")
        assert check_trace.validate_trace(tmp_path / "no_meta.jsonl")
        # Duplicate a span line: duplicate id + wrong declared count.
        (tmp_path / "dup.jsonl").write_text(
            "\n".join(lines + [lines[1]]) + "\n"
        )
        problems = check_trace.validate_trace(tmp_path / "dup.jsonl")
        assert any("duplicate span id" in p for p in problems)

    def test_not_a_trace_file(self, tmp_path):
        data = tmp_path / "data.fimi"
        data.write_text("1 2 3\n1 2\n")
        assert not is_trace_file(data)
        with pytest.raises(TraceError):
            read_trace(data)

    def test_meter_from_trace(self, tmp_path):
        trace = read_trace(self._write(tmp_path))
        meter = meter_from_trace(trace.spans)
        assert meter.total_ops == 15
        assert sum(p.bytes_touched for p in meter.phases) == 107
        assert meter.peak_bytes == 64
        # mine_rank maps onto the canonical "mine" phase.
        assert {p.name for p in meter.phases} == {"build", "mine"}

    def test_summary_renders(self, tmp_path):
        trace = read_trace(self._write(tmp_path))
        text = format_trace_summary(trace)
        assert "build" in text
        assert "mine_rank" in text
        assert "meter totals: 15 ops" in text
        assert "80.0% hit ratio" in text
        assert "budget_bytes" in text

    def test_summarize_groups(self):
        spans = [
            {"name": "mine_rank", "dur": 0.5, "attrs": {"ops": 3}, "worker": 0},
            {"name": "mine_rank", "dur": 0.25, "attrs": {"ops": 2}, "worker": 1},
            {"name": "build", "dur": 0.1, "attrs": {}},
        ]
        groups = {g["name"]: g for g in summarize_spans(spans)}
        assert groups["mine_rank"]["count"] == 2
        assert groups["mine_rank"]["ops"] == 5
        assert groups["mine_rank"]["workers"] == 2
        assert groups["build"]["workers"] == 0


class TestDisabledOverhead:
    def test_instrumented_paths_do_not_require_tracer(self):
        # The miner must run identically with tracing off; obs.get_tracer
        # is the only gate and defaults to None.
        assert obs.get_tracer() is None
        from repro.core.cfp_growth import cfp_growth

        results = cfp_growth([[1, 2], [1, 2], [2, 3]], 2)
        assert results
