"""Shared fixtures: keep the process-wide observability state clean."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Tests must never leak an installed tracer or registry counts."""
    previous = obs.set_tracer(None)
    obs.metrics.reset()
    yield
    obs.set_tracer(previous)
    obs.metrics.reset()
