"""End-to-end: traces reconcile with the Meter, serial and parallel.

The acceptance property of the observability layer: a ``--trace`` run's
span stream, folded back through ``meter_from_trace``, reproduces the
live Meter's ``ops`` and ``bytes_touched`` totals *exactly* — the span
attributes are deltas of that same meter, so any divergence is a bug in
the bridge, not measurement noise.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.core.cfp_growth import mine_rank_transactions
from repro.fptree.growth import ListCollector
from repro.machine import Meter
from repro.obs.report import meter_from_trace, read_trace
from repro.obs.tracer import Tracer
from repro.util.items import prepare_transactions
from tests.conftest import normalize, random_database

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def check_trace():
    spec = importlib.util.spec_from_file_location(
        "check_trace", REPO_ROOT / "tools" / "check_trace.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop(spec.name, None)


@pytest.fixture(scope="module")
def prepared():
    database = random_database(23, n_transactions=120, n_items=14, max_length=9)
    table, transactions = prepare_transactions(database, 3)
    return table, transactions


@pytest.fixture(autouse=True)
def _no_serial_fallback(monkeypatch):
    # The fixture array is tiny; disable the small-array serial fallback so
    # jobs=2 runs genuinely exercise the worker span channel.
    monkeypatch.setenv("REPRO_PARALLEL_MIN_BYTES", "0")


def _traced_run(prepared, jobs):
    table, transactions = prepared
    obs.metrics.reset()
    meter = Meter()
    tracer = Tracer()
    previous = obs.set_tracer(tracer)
    collector = ListCollector()
    try:
        mine_rank_transactions(
            transactions, len(table), 3, collector, meter=meter, jobs=jobs
        )
    finally:
        obs.set_tracer(previous)
    return collector, meter, tracer


class TestReconciliation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_trace_totals_equal_meter_totals(self, prepared, tmp_path, jobs):
        __, meter, tracer = _traced_run(prepared, jobs)
        path = tmp_path / f"trace{jobs}.jsonl"
        tracer.write_jsonl(path, registry=obs.metrics)
        rebuilt = meter_from_trace(read_trace(path).spans)
        assert rebuilt.total_ops == meter.total_ops
        assert sum(p.bytes_touched for p in rebuilt.phases) == sum(
            p.bytes_touched for p in meter.phases
        )

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_trace_file_validates(self, prepared, tmp_path, check_trace, jobs):
        __, __, tracer = _traced_run(prepared, jobs)
        path = tmp_path / f"trace{jobs}.jsonl"
        tracer.write_jsonl(path, registry=obs.metrics)
        assert check_trace.validate_trace(path) == []

    def test_tracing_does_not_change_results(self, prepared):
        table, transactions = prepared
        plain = ListCollector()
        mine_rank_transactions(transactions, len(table), 3, plain)
        traced, __, __ = _traced_run(prepared, 1)
        assert normalize(traced.itemsets) == normalize(plain.itemsets)

    def test_serial_and_parallel_traces_share_shape(self, prepared):
        __, __, serial = _traced_run(prepared, 1)
        __, __, parallel = _traced_run(prepared, 2)
        serial_ranks = sorted(
            r.attrs["rank"] for r in serial.records if r.name == "mine_rank"
        )
        parallel_ranks = sorted(
            r.attrs["rank"] for r in parallel.records if r.name == "mine_rank"
        )
        assert serial_ranks == parallel_ranks

    def test_parallel_spans_are_worker_tagged_and_parented(self, prepared):
        __, __, tracer = _traced_run(prepared, 2)
        by_name: dict = {}
        for record in tracer.records:
            by_name.setdefault(record.name, []).append(record)
        (pspan,) = by_name["mine_parallel"]
        assert pspan.attrs["jobs"] == 2
        workers = [r.worker for r in by_name["mine_rank"]]
        assert all(w is not None for w in workers)
        assert all(r.parent_id == pspan.span_id for r in by_name["mine_rank"])
        # The worker meter travels inside the span but is folded out
        # before ingestion — it must not leak into the merged trace.
        assert all("meter" not in r.attrs for r in by_name["mine_rank"])

    def test_parallel_merge_is_deterministic(self, prepared):
        def shape(tracer):
            return [
                (r.name, r.worker, r.attrs.get("rank"))
                for r in tracer.records
            ]

        __, __, first = _traced_run(prepared, 2)
        __, __, second = _traced_run(prepared, 2)
        assert shape(first) == shape(second)

    def test_registry_collects_cache_counters(self, prepared):
        _traced_run(prepared, 1)
        counters = obs.metrics.counters()
        assert counters.get("subarray_cache.hits", 0) > 0

    def test_meter_only_run_stays_untraced(self, prepared):
        table, transactions = prepared
        obs.metrics.reset()
        meter = Meter()
        mine_rank_transactions(
            transactions, len(table), 3, ListCollector(), meter=meter, jobs=2
        )
        # No tracer installed: the registry must stay empty and the meter
        # still aggregates worker instrumentation (the pre-obs behavior).
        assert obs.metrics.counters() == {}
        assert meter.total_ops > 0
