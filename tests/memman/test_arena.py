"""Unit and property tests for the Appendix-A memory manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ArenaExhaustedError, InvalidChunkError
from repro.memman import Arena


class TestAlloc:
    def test_first_address_nonzero(self):
        arena = Arena()
        assert arena.alloc(7) > 0

    def test_sequential_bump(self):
        arena = Arena()
        a = arena.alloc(7)
        b = arena.alloc(10)
        assert b == a + 7

    def test_contents_zeroed(self):
        arena = Arena()
        addr = arena.alloc(16)
        assert arena.read(addr, 16) == bytes(16)

    def test_rejects_too_small(self):
        arena = Arena()
        with pytest.raises(InvalidChunkError):
            arena.alloc(4)

    def test_rejects_too_large(self):
        arena = Arena(max_chunk_size=24)
        with pytest.raises(InvalidChunkError):
            arena.alloc(25)

    def test_capacity_exhaustion(self):
        arena = Arena(capacity=64)
        arena.alloc(24)
        arena.alloc(24)
        with pytest.raises(ArenaExhaustedError):
            arena.alloc(24)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Arena(capacity=4)
        with pytest.raises(ValueError):
            Arena(capacity=1 << 41)


class TestFreeReuse:
    def test_freed_chunk_is_reused(self):
        arena = Arena()
        addr = arena.alloc(12)
        arena.free(addr, 12)
        assert arena.alloc(12) == addr

    def test_queue_is_lifo(self):
        arena = Arena()
        a = arena.alloc(8)
        b = arena.alloc(8)
        arena.free(a, 8)
        arena.free(b, 8)
        assert arena.alloc(8) == b
        assert arena.alloc(8) == a

    def test_different_sizes_use_different_queues(self):
        arena = Arena()
        a = arena.alloc(8)
        arena.free(a, 8)
        # A 9-byte request must not be served from the 8-byte queue.
        b = arena.alloc(9)
        assert b != a
        assert arena.alloc(8) == a

    def test_reused_chunk_is_zeroed(self):
        arena = Arena()
        addr = arena.alloc(8)
        arena.write(addr, b"\xab" * 8)
        arena.free(addr, 8)
        again = arena.alloc(8)
        assert arena.read(again, 8) == bytes(8)

    def test_free_rejects_out_of_range(self):
        arena = Arena()
        arena.alloc(8)
        with pytest.raises(InvalidChunkError):
            arena.free(10_000, 8)

    def test_free_queue_length(self):
        arena = Arena()
        addrs = [arena.alloc(7) for _ in range(5)]
        for addr in addrs:
            arena.free(addr, 7)
        assert arena.free_queue_length(7) == 5
        assert arena.free_queue_length(8) == 0


class TestResize:
    def test_grow_copies_content(self):
        arena = Arena()
        addr = arena.alloc(7)
        arena.write(addr, b"abcdefg")
        new_addr = arena.resize(addr, 7, 12)
        assert arena.read(new_addr, 7) == b"abcdefg"

    def test_shrink_truncates(self):
        arena = Arena()
        addr = arena.alloc(12)
        arena.write(addr, b"abcdefghijkl")
        new_addr = arena.resize(addr, 12, 7)
        assert arena.read(new_addr, 7) == b"abcdefg"

    def test_old_chunk_enqueued(self):
        arena = Arena()
        addr = arena.alloc(7)
        arena.resize(addr, 7, 12)
        assert arena.free_queue_length(7) == 1

    def test_same_size_is_identity(self):
        arena = Arena()
        addr = arena.alloc(9)
        arena.write(addr, b"123456789")
        assert arena.resize(addr, 9, 9) == addr
        assert arena.read(addr, 9) == b"123456789"


class TestAccounting:
    def test_footprint_tracks_bump_pointer(self):
        arena = Arena()
        assert arena.footprint_bytes == 0
        arena.alloc(10)
        assert arena.footprint_bytes == 10
        arena.alloc(5)
        assert arena.footprint_bytes == 15

    def test_live_excludes_free(self):
        arena = Arena()
        a = arena.alloc(10)
        arena.alloc(6)
        arena.free(a, 10)
        assert arena.footprint_bytes == 16
        assert arena.live_bytes == 6

    def test_high_water(self):
        arena = Arena()
        a = arena.alloc(100)
        arena.free(a, 100)
        assert arena.high_water_bytes == 100
        # Reuse does not raise high water.
        arena.alloc(100)
        assert arena.high_water_bytes == 100

    def test_stats_counters(self):
        arena = Arena()
        a = arena.alloc(7)
        arena.free(a, 7)
        arena.alloc(7)
        stats = arena.stats()
        assert stats.alloc_count == 2
        assert stats.free_count == 1
        assert stats.reuse_count == 1

    def test_reset(self):
        arena = Arena()
        arena.alloc(50)
        arena.reset()
        assert arena.footprint_bytes == 0
        assert arena.live_bytes == 0
        addr = arena.alloc(7)
        assert arena.read(addr, 7) == bytes(7)


class TestGrowth:
    def test_buffer_grows_on_demand(self):
        arena = Arena(capacity=1 << 22)
        # Allocate past the initial 64 KiB block.
        for _ in range(300):
            arena.alloc(512)
        assert arena.footprint_bytes == 300 * 512

    def test_growth_respects_capacity(self):
        arena = Arena(capacity=100)
        arena.alloc(50)
        arena.alloc(42)
        with pytest.raises(ArenaExhaustedError):
            arena.alloc(5)


class _Action:
    """Reference model entry for the property test."""

    def __init__(self, addr, size, payload):
        self.addr = addr
        self.size = size
        self.payload = payload


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["alloc", "free", "resize"]),
                st.integers(min_value=5, max_value=64),
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_alloc_free_model(self, ops):
        """Live chunks never overlap and always hold their payload."""
        arena = Arena(capacity=1 << 22, max_chunk_size=64)
        live: list[_Action] = []
        counter = 0
        for op, size in ops:
            if op == "alloc" or not live:
                addr = arena.alloc(size)
                payload = bytes((counter + i) % 251 for i in range(size))
                counter += 1
                arena.write(addr, payload)
                live.append(_Action(addr, size, payload))
            elif op == "free":
                chunk = live.pop(0)
                arena.free(chunk.addr, chunk.size)
            else:
                chunk = live.pop(0)
                new_addr = arena.resize(chunk.addr, chunk.size, size)
                kept = chunk.payload[: min(chunk.size, size)]
                payload = kept + bytes(max(0, size - len(kept)))
                arena.write(new_addr, payload)
                live.append(_Action(new_addr, size, payload))
        # No two live chunks overlap.
        spans = sorted((c.addr, c.addr + c.size) for c in live)
        for (__, end), (start, __) in zip(spans, spans[1:]):
            assert end <= start
        # Every payload is intact.
        for chunk in live:
            assert arena.read(chunk.addr, chunk.size) == chunk.payload
        # Accounting holds.
        assert arena.live_bytes == sum(c.size for c in live)
        assert arena.footprint_bytes <= arena.high_water_bytes
