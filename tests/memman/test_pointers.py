"""Unit tests for the 40-bit pointer codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PointerRangeError
from repro.memman import pointers

valid_addresses = st.integers(min_value=0, max_value=pointers.max_encodable_address())


class TestWritePointer:
    def test_writes_five_bytes_big_endian(self):
        buf = bytearray(8)
        end = pointers.write_pointer(buf, 1, 0x0102030405)
        assert end == 6
        assert bytes(buf[1:6]) == b"\x01\x02\x03\x04\x05"

    def test_null_pointer(self):
        buf = bytearray(5)
        pointers.write_pointer(buf, 0, pointers.NULL)
        assert bytes(buf) == b"\x00\x00\x00\x00\x00"

    def test_rejects_negative(self):
        with pytest.raises(PointerRangeError):
            pointers.write_pointer(bytearray(5), 0, -1)

    def test_rejects_marker_prefix_addresses(self):
        # Any address whose top byte is 0xFF collides with embedded leaves.
        with pytest.raises(PointerRangeError):
            pointers.write_pointer(bytearray(5), 0, 0xFF << 32)
        with pytest.raises(PointerRangeError):
            pointers.write_pointer(bytearray(5), 0, (1 << 40) - 1)

    def test_max_encodable_address_ok(self):
        buf = bytearray(5)
        pointers.write_pointer(buf, 0, pointers.max_encodable_address())
        assert buf[0] == 0xFE


class TestReadPointer:
    def test_reads_back(self):
        buf = bytearray(5)
        pointers.write_pointer(buf, 0, 123456789)
        assert pointers.read_pointer(buf, 0) == 123456789

    def test_marker_byte_raises(self):
        buf = bytearray(b"\xff\x00\x00\x00\x00")
        with pytest.raises(PointerRangeError):
            pointers.read_pointer(buf, 0)

    @given(valid_addresses)
    def test_roundtrip(self, address):
        buf = bytearray(7)
        end = pointers.write_pointer(buf, 2, address)
        assert end == 7
        assert pointers.read_pointer(buf, 2) == address

    @given(valid_addresses)
    def test_first_byte_never_marker(self, address):
        buf = bytearray(5)
        pointers.write_pointer(buf, 0, address)
        assert buf[0] != pointers.MARKER_BYTE
