"""Incremental sliding-window mining: merges, evictions, snapshots, flips.

The load-bearing contract here is the identity tripwire — every window
the incremental path can reach must produce a CFP-array byte-identical
to a from-scratch rebuild over the same transactions with the same
frozen ItemTable. The hypothesis schedule property drives arbitrary
append/evict/publish interleavings against that contract, and the chaos
tests pin down what an injected failure at ``delta.merge`` or
``snapshot.flip`` may and may not leave behind.
"""

from __future__ import annotations

import glob
import json
import os
import stat
import tempfile
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faultinject, obs
from repro.core.cfp_growth import mine_array
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.errors import StreamingError
from repro.faultinject import InjectedFault
from repro.fptree.growth import ListCollector
from repro.serving.follow import FollowingStore
from repro.storage import load_cfp_array
from repro.streaming import (
    CountingPhase,
    DeltaForest,
    IncrementalMiner,
    SnapshotError,
    SnapshotManager,
    StreamingBuilder,
    compact_forest,
    forest_to_array,
    merge_forest,
)
from tests.conftest import normalize, random_database


@pytest.fixture(autouse=True)
def _clean():
    faultinject.reset()
    obs.metrics.reset()
    yield
    faultinject.reset()


def _table(batches, min_support=2):
    counting = CountingPhase()
    for batch in batches:
        counting.add_batch(batch)
    return counting.finish(min_support)


def _ranked(table, transactions):
    rank_of = table.rank_of
    return [
        sorted({rank_of[item] for item in t if item in rank_of})
        for t in transactions
    ]


def _static_array(table, transactions):
    tree = TernaryCfpTree.from_rank_transactions(
        _ranked(table, transactions), len(table)
    )
    return convert(tree)


def _delta(table, batch):
    tree = TernaryCfpTree(len(table))
    tree.insert_batch(_ranked(table, batch))
    return DeltaForest.from_tree(tree)


def _identical(a, b):
    return bytes(a.buffer) == bytes(b.buffer) and a.starts == b.starts


def _mine_static(table, transactions):
    collector = ListCollector()
    mine_array(_static_array(table, transactions), table.min_support, collector)
    return [
        (table.ranks_to_items(ranks), support)
        for ranks, support in collector.itemsets
    ]


def _copy_trees(forest):
    return {
        leading: (flat[0][:], flat[1][:], flat[2][:])
        for leading, flat in forest.trees.items()
    }


class TestMergeForest:
    def test_merge_matches_rebuild(self):
        first = random_database(1, n_transactions=30)
        second = random_database(2, n_transactions=30)
        table = _table([first, second])
        forest = _delta(table, first)
        merge_forest(forest, _delta(table, second))
        assert _identical(forest_to_array(forest), _static_array(table, first + second))

    def test_subtract_then_compact_restores_the_smaller_window(self):
        first = random_database(3, n_transactions=30)
        second = random_database(4, n_transactions=30)
        table = _table([first, second])
        forest = _delta(table, first)
        merge_forest(forest, _delta(table, second))
        merge_forest(forest, _delta(table, first), sign=-1)
        dropped = compact_forest(forest)
        assert dropped >= 0
        assert _identical(forest_to_array(forest), _static_array(table, second))

    def test_subtracting_an_unseen_subtree_raises(self):
        batch = [[1, 2], [1, 2], [2, 3], [2, 3]]
        table = _table([batch])
        empty = DeltaForest(len(table))
        with pytest.raises(StreamingError, match="no such subtree"):
            merge_forest(empty, _delta(table, batch), sign=-1)

    def test_oversubtraction_raises(self):
        once = [[1, 2], [3, 1], [2, 3]]
        table = _table([once, once])
        forest = _delta(table, once)
        twice = _delta(table, once + once)
        with pytest.raises(StreamingError):
            merge_forest(forest, twice, sign=-1)

    def test_invalid_sign_and_rank_mismatch_raise(self):
        batch = [[1, 2], [1, 2]]
        table = _table([batch])
        forest = _delta(table, batch)
        with pytest.raises(StreamingError, match="sign"):
            merge_forest(forest, _delta(table, batch), sign=2)
        with pytest.raises(StreamingError, match="rank"):
            merge_forest(forest, DeltaForest(len(table) + 1))

    def test_injected_merge_failure_leaves_base_untouched(self):
        first = random_database(5, n_transactions=25)
        second = random_database(6, n_transactions=25)
        table = _table([first, second])
        forest = _delta(table, first)
        before = _copy_trees(forest)
        delta = _delta(table, second)
        faultinject.install("delta.merge:raise:times=1")
        with pytest.raises(InjectedFault):
            merge_forest(forest, delta)
        assert forest.trees == before  # retry-safe: nothing committed
        merge_forest(forest, delta)  # the retry
        assert _identical(forest_to_array(forest), _static_array(table, first + second))


class TestIncrementalMiner:
    def test_grow_only_identity_at_every_batch(self):
        database = random_database(7, n_transactions=120)
        batches = [database[i : i + 30] for i in range(0, 120, 30)]
        table = _table(batches)
        miner = IncrementalMiner(table)
        seen = []
        for batch in batches:
            miner.append_batch(batch)
            seen.extend(batch)
            assert _identical(miner.to_array(), _static_array(table, seen))

    def test_sliding_window_identity_at_every_batch(self):
        database = random_database(8, n_transactions=150)
        batches = [database[i : i + 30] for i in range(0, 150, 30)]
        table = _table(batches)
        miner = IncrementalMiner(table, window=2)
        for index, batch in enumerate(batches):
            miner.append_batch(batch)
            window = [t for b in batches[max(0, index - 1) : index + 1] for t in b]
            assert miner.window_batches == min(index + 1, 2)
            assert _identical(miner.to_array(), _static_array(table, window))

    def test_mine_matches_static_window(self):
        database = random_database(9, n_transactions=90)
        batches = [database[i : i + 30] for i in range(0, 90, 30)]
        table = _table(batches, min_support=3)
        miner = IncrementalMiner(table, window=2)
        for batch in batches:
            miner.append_batch(batch)
        window = [t for b in batches[-2:] for t in b]
        assert normalize(miner.mine()) == normalize(_mine_static(table, window))

    def test_counters_and_window_accounting(self):
        database = random_database(10, n_transactions=80)
        batches = [database[i : i + 20] for i in range(0, 80, 20)]
        table = _table(batches)
        miner = IncrementalMiner(table, window=2)
        for batch in batches:
            miner.append_batch(batch)
        assert obs.metrics.get("streaming.delta_merges") == 4
        assert obs.metrics.get("streaming.batches_evicted") == 2
        assert miner.window_transactions <= 40

    def test_empty_window_eviction_raises(self):
        table = _table([[[1, 2], [1, 2]]])
        with pytest.raises(StreamingError, match="nothing to evict"):
            IncrementalMiner(table).evict_oldest()

    def test_window_must_be_positive(self):
        table = _table([[[1, 2], [1, 2]]])
        with pytest.raises(StreamingError, match="window"):
            IncrementalMiner(table, window=0)


_batch = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=5),
    min_size=1,
    max_size=6,
)


class TestScheduleProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        batches=st.lists(_batch, min_size=1, max_size=5),
        window=st.integers(min_value=1, max_value=3),
        evicts=st.lists(st.booleans(), min_size=5, max_size=5),
        publishes=st.lists(st.booleans(), min_size=5, max_size=5),
    )
    def test_any_schedule_matches_the_static_window(
        self, batches, window, evicts, publishes
    ):
        """Append/evict/publish in any interleaving == static rebuild."""
        table = _table(batches, min_support=2)
        miner = IncrementalMiner(table, window=window)
        live: deque = deque()
        with tempfile.TemporaryDirectory() as snapdir:
            manager = SnapshotManager(snapdir)
            for index, batch in enumerate(batches):
                miner.append_batch(batch)
                live.append(batch)
                while len(live) > window:
                    live.popleft()
                if evicts[index] and miner.window_batches > 0:
                    miner.evict_oldest()
                    live.popleft()
                window_tx = [t for b in live for t in b]
                array = miner.to_array()
                assert _identical(array, _static_array(table, window_tx))
                if publishes[index]:
                    generation = manager.publish(
                        array, table, miner.window_transactions
                    )
                    state = manager.current()
                    assert state is not None and state[0] == generation
                    assert _identical(load_cfp_array(state[1]), array)
            window_tx = [t for b in live for t in b]
            assert normalize(miner.mine()) == normalize(
                _mine_static(table, window_tx)
            )

    @settings(max_examples=15, deadline=None)
    @given(
        batches=st.lists(_batch, min_size=2, max_size=4),
        window=st.integers(min_value=1, max_value=3),
    )
    def test_a_killed_merge_retries_to_the_identical_array(self, batches, window):
        """A fault at delta.merge loses nothing: the retry converges."""
        table = _table(batches, min_support=2)
        miner = IncrementalMiner(table, window=window)
        miner.append_batch(batches[0])
        faultinject.install("delta.merge:raise:times=1")
        with pytest.raises(InjectedFault):
            miner.append_batch(batches[1])
        faultinject.reset()
        assert miner.batches_consumed == 1  # the failed append left no trace
        for batch in batches[1:]:
            miner.append_batch(batch)
        window_tx = [t for b in batches[-miner.window_batches :] for t in b]
        assert _identical(miner.to_array(), _static_array(table, window_tx))


class TestSnapshotManager:
    def _published(self, snapdir, seeds=(11,)):
        databases = [random_database(seed, n_transactions=40) for seed in seeds]
        table = _table(databases, min_support=3)
        manager = SnapshotManager(snapdir)
        generation = 0
        for database in databases:
            generation = manager.publish(
                _static_array(table, database), table, len(database)
            )
        return manager, table, generation

    def test_publish_roundtrip(self, tmp_path):
        manager, table, generation = self._published(tmp_path)
        state = manager.current()
        assert state is not None and state[0] == generation == 1
        loaded = load_cfp_array(state[1])
        assert _identical(loaded, _static_array(table, random_database(11, n_transactions=40)))
        assert os.path.exists(state[1] + ".items.json")

    def test_superseded_generations_are_retired(self, tmp_path):
        manager, __, generation = self._published(tmp_path, seeds=(11, 12, 13))
        assert generation == 3
        remaining = sorted(
            name for name in os.listdir(tmp_path) if name.endswith(".cfpa")
        )
        assert remaining == ["gen-000003.cfpa"]
        assert obs.metrics.get("snapshot.retired") == 2

    def test_acquired_generation_survives_the_next_publish(self, tmp_path):
        manager, table, __ = self._published(tmp_path)
        generation, path = manager.acquire()
        manager.publish(_static_array(table, [[1, 2]]), table, 1)
        assert os.path.exists(path)  # pinned: the flip may not unlink it
        manager.release(generation)
        assert not os.path.exists(path)

    def test_flip_failure_preserves_the_old_manifest(self, tmp_path):
        manager, table, __ = self._published(tmp_path)
        array = _static_array(table, [[1, 2], [1, 2], [1, 2]])
        faultinject.install("snapshot.flip:raise:times=1")
        with pytest.raises(InjectedFault):
            manager.publish(array, table, 3)
        state = manager.current()
        assert state is not None and state[0] == 1  # old generation intact
        load_cfp_array(state[1])
        assert not glob.glob(os.path.join(tmp_path, "MANIFEST.json.tmp.*"))
        assert manager.publish(array, table, 3) == 2  # the retry flips
        state = manager.current()
        assert state is not None and state[0] == 2

    def test_torn_manifest_raises(self, tmp_path):
        manager, __, __unused = self._published(tmp_path)
        with open(manager.manifest_path, "w", encoding="utf-8") as handle:
            handle.write('{"generation": 1, "arr')  # torn mid-write
        with pytest.raises(SnapshotError, match="torn"):
            manager.current()

    def test_acquire_without_a_manifest_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot"):
            SnapshotManager(tmp_path / "empty").acquire()

    def test_manifest_and_generations_are_private(self, tmp_path):
        manager, __, __unused = self._published(tmp_path)
        state = manager.current()
        assert state is not None
        for path in (manager.manifest_path, state[1]):
            mode = stat.S_IMODE(os.stat(path).st_mode)
            assert mode & 0o077 == 0, f"{path} is group/world accessible"


class TestFollowingStore:
    def _publish_window(self, manager, table, transactions):
        return manager.publish(
            _static_array(table, transactions), table, len(transactions)
        )

    def test_refresh_flips_and_answers_track_the_window(self, tmp_path):
        first = random_database(20, n_transactions=50)
        second = random_database(21, n_transactions=50)
        table = _table([first, second], min_support=3)
        manager = SnapshotManager(tmp_path)
        self._publish_window(manager, table, first)
        probe = (table.item_of[1],)
        with FollowingStore(tmp_path, pool_pages=32) as store:
            assert store.generation == 1
            count_first = sum(1 for t in first if probe[0] in t)
            assert store.support(probe) == count_first
            self._publish_window(manager, table, second)
            assert store.refresh() is True
            assert store.generation == 2
            assert store.support(probe) == sum(1 for t in second if probe[0] in t)
            assert store.refresh() is False  # nothing new
            assert obs.metrics.get("serving.generation") == 2  # init + flip

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="no loadable snapshot"):
            FollowingStore(tmp_path / "nothing")

    def test_torn_manifest_rides_out_on_the_current_generation(self, tmp_path):
        database = random_database(22, n_transactions=50)
        table = _table([database], min_support=3)
        manager = SnapshotManager(tmp_path)
        self._publish_window(manager, table, database)
        probe = (table.item_of[1],)
        with FollowingStore(tmp_path, pool_pages=32) as store:
            with open(manager.manifest_path, "w", encoding="utf-8") as handle:
                handle.write("{not json")
            assert store.refresh() is False
            assert store.errors  # the torn manifest was recorded
            assert store.support(probe) == sum(1 for t in database if probe[0] in t)

    def test_in_flight_queries_pin_the_old_generation(self, tmp_path):
        first = random_database(23, n_transactions=50)
        second = random_database(24, n_transactions=50)
        table = _table([first, second], min_support=3)
        manager = SnapshotManager(tmp_path)
        self._publish_window(manager, table, first)
        probe = (table.item_of[1],)
        with FollowingStore(tmp_path, pool_pages=32) as store:
            with store._pinned() as pinned:
                self._publish_window(manager, table, second)
                assert store.refresh() is True
                # The pinned query still reads generation 1 coherently.
                assert pinned.support(probe) == sum(1 for t in first if probe[0] in t)
            # Last unpin released generation 1; the live store answers gen 2.
            assert store.support(probe) == sum(1 for t in second if probe[0] in t)


class TestCheckpointHygiene:
    def test_checkpoints_are_private_atomic_and_leave_no_temp_files(self, tmp_path):
        database = random_database(30, n_transactions=60)
        table = _table([database], min_support=3)
        builder = StreamingBuilder(table)
        builder.add_batch(database)
        checkpoint = tmp_path / "build.cfpt"
        builder.checkpoint(checkpoint)
        mode = stat.S_IMODE(os.stat(checkpoint).st_mode)
        assert mode & 0o077 == 0, "checkpoint must not be group/world readable"
        assert not glob.glob(str(tmp_path / "*.tmp.*")), "temp file leaked"
        resumed = StreamingBuilder.resume(table, checkpoint)
        assert resumed.batches_consumed == builder.batches_consumed

    def test_manifest_is_json_with_trailing_newline(self, tmp_path):
        database = random_database(31, n_transactions=40)
        table = _table([database], min_support=3)
        manager = SnapshotManager(tmp_path)
        manager.publish(_static_array(table, database), table, len(database))
        with open(manager.manifest_path, "rb") as handle:
            raw = handle.read()
        assert raw.endswith(b"\n")
        manifest = json.loads(raw)
        assert manifest == {"generation": 1, "array": "gen-000001.cfpa"}
