"""Tests for closed/maximal/top-k mining, rules, and sampling."""

import pytest
from hypothesis import given, settings

from repro.algorithms.bruteforce import brute_force
from repro.algorithms.sampling import SamplingMiner, sample_mine
from repro.errors import ExperimentError
from repro.mining import closed_itemsets, maximal_itemsets, top_k_itemsets
from repro.rules import Rule, generate_rules, mine_rules
from tests.conftest import db_strategy, normalize, random_database


def brute_closed(database, min_support):
    """Oracle: frequent itemsets with no equal-support strict superset."""
    frequent = normalize(brute_force(database, min_support))
    closed = {}
    for itemset, support in frequent.items():
        if not any(
            itemset < other and frequent[other] == support for other in frequent
        ):
            closed[itemset] = support
    return closed


def brute_maximal(database, min_support):
    """Oracle: frequent itemsets with no frequent strict superset."""
    frequent = normalize(brute_force(database, min_support))
    return {
        itemset: support
        for itemset, support in frequent.items()
        if not any(itemset < other for other in frequent)
    }


class TestClosed:
    def test_simple(self):
        db = [[1, 2], [1, 2], [1]]
        # {1} (3), {1,2} (2) are closed; {2} is not (same support as {1,2}).
        assert normalize(closed_itemsets(db, 1)) == {
            frozenset([1]): 3,
            frozenset([1, 2]): 2,
        }

    def test_matches_oracle_random(self):
        for seed in range(5):
            db = random_database(seed, n_transactions=40, n_items=8, max_length=6)
            assert normalize(closed_itemsets(db, 2)) == brute_closed(db, 2), seed

    @settings(max_examples=25, deadline=None)
    @given(db_strategy)
    def test_property_matches_oracle(self, database):
        assert normalize(closed_itemsets(database, 2)) == brute_closed(database, 2)

    def test_lossless_representation(self, small_db):
        # Any frequent itemset's support = max support among closed supersets.
        closed = normalize(closed_itemsets(small_db, 2))
        for itemset, support in normalize(brute_force(small_db, 2)).items():
            covering = [s for c, s in closed.items() if itemset <= c]
            assert max(covering) == support

    def test_empty(self):
        assert closed_itemsets([], 1) == []


class TestMaximal:
    def test_simple(self):
        db = [[1, 2, 3]] * 2 + [[1, 2]]
        assert normalize(maximal_itemsets(db, 2)) == {frozenset([1, 2, 3]): 2}

    def test_matches_oracle_random(self):
        for seed in range(5):
            db = random_database(seed, n_transactions=40, n_items=8, max_length=6)
            assert normalize(maximal_itemsets(db, 2)) == brute_maximal(db, 2), seed

    @settings(max_examples=25, deadline=None)
    @given(db_strategy)
    def test_property_matches_oracle(self, database):
        assert normalize(maximal_itemsets(database, 2)) == brute_maximal(
            database, 2
        )

    def test_maximal_subset_of_closed(self, small_db):
        maximal = set(normalize(maximal_itemsets(small_db, 2)))
        closed = set(normalize(closed_itemsets(small_db, 2)))
        assert maximal <= closed


class TestTopK:
    def test_returns_k_best(self, small_db):
        all_frequent = sorted(
            normalize(brute_force(small_db, 1)).items(),
            key=lambda e: -e[1],
        )
        top = top_k_itemsets(small_db, 5)
        assert len(top) == 5
        expected_supports = sorted((s for __, s in all_frequent), reverse=True)[:5]
        assert sorted((s for __, s in top), reverse=True) == expected_supports

    def test_k_larger_than_output(self):
        top = top_k_itemsets([[1, 2]], 100)
        assert len(top) == 3

    def test_min_length_filters(self, small_db):
        top = top_k_itemsets(small_db, 4, min_length=2)
        assert all(len(itemset) >= 2 for itemset, __ in top)
        # The best pairs by support:
        oracle = sorted(
            (
                (s, i)
                for i, s in normalize(brute_force(small_db, 1)).items()
                if len(i) >= 2
            ),
            reverse=True,
        )
        assert sorted((s for __, s in top), reverse=True) == [
            s for s, __ in oracle[:4]
        ]

    def test_ordering(self, small_db):
        top = top_k_itemsets(small_db, 6)
        supports = [s for __, s in top]
        assert supports == sorted(supports, reverse=True)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            top_k_itemsets([[1]], 0)
        with pytest.raises(ExperimentError):
            top_k_itemsets([[1]], 1, min_length=0)

    @settings(max_examples=20, deadline=None)
    @given(db_strategy)
    def test_property_supports_exact(self, database):
        for itemset, support in top_k_itemsets(database, 8):
            actual = sum(1 for t in database if set(itemset) <= set(t))
            assert actual == support


class TestRules:
    DB = [
        ["bread", "milk"],
        ["bread", "diapers", "beer"],
        ["milk", "diapers", "beer"],
        ["bread", "milk", "diapers", "beer"],
        ["bread", "milk", "diapers"],
    ]

    def test_confidence_and_lift(self):
        rules = mine_rules(self.DB, min_support=2, min_confidence=0.9)
        by_pair = {
            (r.antecedent, r.consequent): r for r in rules
        }
        rule = by_pair[(("beer",), ("diapers",))]
        assert rule.support == 3
        assert rule.confidence == pytest.approx(1.0)
        # lift = 1.0 / (4/5)
        assert rule.lift == pytest.approx(1.25)

    def test_threshold_respected(self):
        rules = mine_rules(self.DB, 2, min_confidence=0.8)
        assert all(r.confidence >= 0.8 for r in rules)

    def test_multi_item_consequents(self):
        rules = mine_rules(self.DB, 2, min_confidence=0.5)
        assert any(len(r.consequent) >= 2 for r in rules)

    def test_max_consequent_size(self):
        rules = mine_rules(self.DB, 2, min_confidence=0.1, max_consequent_size=1)
        assert all(len(r.consequent) == 1 for r in rules)

    def test_rules_exhaustive_vs_bruteforce(self):
        # Every (antecedent, consequent) split meeting the threshold must
        # appear.
        supports = normalize(brute_force(self.DB, 1))
        expected = set()
        from itertools import combinations

        for itemset, support in supports.items():
            if len(itemset) < 2:
                continue
            items = sorted(itemset)
            for size in range(1, len(items)):
                for consequent in combinations(items, size):
                    antecedent = frozenset(itemset) - set(consequent)
                    if support / supports[antecedent] >= 0.6:
                        expected.add((frozenset(antecedent), frozenset(consequent)))
        rules = mine_rules(self.DB, 1, min_confidence=0.6)
        actual = {(frozenset(r.antecedent), frozenset(r.consequent)) for r in rules}
        assert actual == expected

    def test_generate_from_mining_result(self):
        from repro import mine_frequent_itemsets

        result = mine_frequent_itemsets(self.DB, 2)
        rules = generate_rules(result, len(self.DB), 0.9)
        assert rules and all(isinstance(r, Rule) for r in rules)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            mine_rules(self.DB, 2, min_confidence=0.0)
        with pytest.raises(ExperimentError):
            generate_rules([], 0, 0.5)

    def test_sorted_by_confidence(self):
        rules = mine_rules(self.DB, 2, min_confidence=0.3)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)


class TestSampling:
    def test_full_sample_is_exact(self, small_db):
        results, report = sample_mine(small_db, 2, sample_fraction=1.0)
        assert normalize(results) == normalize(brute_force(small_db, 2))
        assert report.certified_complete

    def test_verified_supports_are_true(self):
        db = random_database(6, n_transactions=80, n_items=10, max_length=7)
        results, __ = sample_mine(db, 4, sample_fraction=0.5, seed=3)
        for itemset, support in results:
            actual = sum(1 for t in db if set(itemset) <= set(t))
            assert actual == support
            assert support >= 4

    def test_certified_runs_are_complete(self):
        complete = 0
        for seed in range(6):
            db = random_database(seed, n_transactions=100, n_items=10, max_length=7)
            results, report = sample_mine(
                db, 5, sample_fraction=0.6, lowering_factor=0.6, seed=seed
            )
            if report.certified_complete:
                complete += 1
                assert normalize(results) == normalize(brute_force(db, 5)), seed
        assert complete >= 1, "no run certified; loosen the lowering factor"

    def test_report_fields(self, small_db):
        __, report = sample_mine(small_db, 2, sample_fraction=0.8, seed=1)
        assert report.sample_size == 8
        assert report.lowered_support >= 1
        assert report.candidates_checked >= 0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            sample_mine([[1]], 1, sample_fraction=0.0)
        with pytest.raises(ExperimentError):
            sample_mine([[1]], 1, lowering_factor=1.5)

    def test_registered_miner(self, small_db):
        from repro.algorithms import get_miner

        miner = get_miner("sampling")
        results = miner.mine(small_db, 2)
        expected = normalize(brute_force(small_db, 2))
        # Verified results are always a sound subset; often exact.
        for itemset, support in results:
            assert expected[frozenset(itemset)] == support
