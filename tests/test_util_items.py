"""Unit tests for item-rank preprocessing."""

import pytest
from hypothesis import given

from repro.errors import DatasetError
from repro.util.items import build_item_table, count_items, prepare_transactions
from tests.conftest import db_strategy


class TestCountItems:
    def test_counts_set_semantics(self):
        # Duplicate items within a transaction count once.
        counts = count_items([[1, 1, 2], [1]])
        assert counts[1] == 2
        assert counts[2] == 1

    def test_empty_database(self):
        assert count_items([]) == {}


class TestBuildItemTable:
    def test_filters_infrequent(self):
        table = build_item_table([[1, 2], [1, 3], [1]], min_support=2)
        assert set(table.supports) == {1}

    def test_rank_order_by_support(self):
        table = build_item_table([[1, 2], [2], [1, 2, 3], [3]], min_support=1)
        # Supports: 2 -> 3, 1 -> 2, 3 -> 2; ties broken by item order.
        assert table.rank_of[2] == 1
        assert table.rank_of[1] == 2
        assert table.rank_of[3] == 3

    def test_rank_arrays_consistent(self):
        table = build_item_table([[5, 7], [5], [7], [7]], min_support=1)
        for item, rank in table.rank_of.items():
            assert table.item_of[rank] == item
            assert table.rank_supports[rank] == table.supports[item]

    def test_min_support_validation(self):
        with pytest.raises(DatasetError):
            build_item_table([[1]], min_support=0)

    def test_string_items(self):
        table = build_item_table([["b", "a"], ["a"]], min_support=1)
        assert table.rank_of["a"] == 1
        assert table.ranks_to_items((1, 2)) == ("a", "b")


class TestPrepareTransactions:
    def test_transactions_sorted_ascending_rank(self):
        __, prepared = prepare_transactions(
            [[3, 1, 2], [2, 3], [3]], min_support=1
        )
        for ranks in prepared:
            assert ranks == sorted(ranks)
            assert len(ranks) == len(set(ranks))

    def test_infrequent_items_dropped(self):
        table, prepared = prepare_transactions([[1, 2], [1]], min_support=2)
        assert len(table) == 1
        assert prepared == [[1], [1]]

    def test_empty_transactions_dropped(self):
        __, prepared = prepare_transactions([[9], [1], [1]], min_support=2)
        assert prepared == [[1], [1]]

    @given(db_strategy)
    def test_ranks_always_valid(self, database):
        table, prepared = prepare_transactions(database, min_support=2)
        for ranks in prepared:
            for rank in ranks:
                assert 1 <= rank <= len(table)
