"""Unit tests for the paging cost model — regime behaviour (§4.4)."""

import pytest

from repro.errors import ExperimentError
from repro.machine import MachineSpec, Meter, SimulatedMachine
from repro.machine.meter import Phase


def phase(footprint, bytes_touched, sequential=0.5, ops=0, io=0):
    p = Phase("t", sequential_fraction=sequential)
    p.footprint_bytes = footprint
    p.bytes_touched = bytes_touched
    p.ops = ops
    p.io_bytes = io
    return p


class TestSpec:
    def test_defaults_scaled_testbed(self):
        spec = MachineSpec()
        assert spec.physical_memory == 6 * 1024 * 1024

    def test_paper_testbed(self):
        assert MachineSpec.paper_testbed().physical_memory == 6 * 1024**3

    def test_validation(self):
        with pytest.raises(ExperimentError):
            MachineSpec(physical_memory=0)
        with pytest.raises(ExperimentError):
            MachineSpec(disk_bandwidth=0)


class TestRegimes:
    def setup_method(self):
        self.machine = SimulatedMachine(MachineSpec(physical_memory=1 << 20))

    def test_in_core_no_paging(self):
        cpu, io, paging = self.machine.phase_seconds(
            phase(footprint=1 << 19, bytes_touched=1 << 19, ops=1000)
        )
        assert paging == 0.0
        assert cpu > 0

    def test_overflow_pays_paging(self):
        __, __, paging = self.machine.phase_seconds(
            phase(footprint=1 << 21, bytes_touched=1 << 20)
        )
        assert paging > 0.0

    def test_paging_grows_with_overflow(self):
        small = self.machine.phase_seconds(
            phase(footprint=int(1.2 * (1 << 20)), bytes_touched=1 << 20)
        )[2]
        large = self.machine.phase_seconds(
            phase(footprint=4 << 20, bytes_touched=1 << 20)
        )[2]
        assert large > small

    def test_sequential_overflow_much_cheaper(self):
        seq = self.machine.phase_seconds(
            phase(footprint=4 << 20, bytes_touched=1 << 20, sequential=1.0)
        )[2]
        rnd = self.machine.phase_seconds(
            phase(footprint=4 << 20, bytes_touched=1 << 20, sequential=0.0)
        )[2]
        # §4.3: a random-access phase collapses; sequential streams.
        assert rnd > 100 * seq

    def test_io_bandwidth_bound(self):
        spec = self.machine.spec
        __, io, __ = self.machine.phase_seconds(phase(0, 0, io=int(spec.scan_bandwidth)))
        assert io == pytest.approx(1.0)

    def test_knee_at_memory_limit(self):
        """Total time vs footprint shows the paper's knee shape."""
        times = []
        for footprint in (1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22):
            cpu, io, paging = self.machine.phase_seconds(
                phase(footprint, bytes_touched=footprint, ops=footprint // 8)
            )
            times.append(cpu + io + paging)
        # Monotone, and the growth factor jumps after the 1 MiB limit.
        assert all(b >= a for a, b in zip(times, times[1:]))
        in_core_growth = times[2] / times[1]
        thrash_growth = times[4] / times[2]
        assert thrash_growth > 5 * in_core_growth


class TestEstimate:
    def test_aggregates_phases(self):
        machine = SimulatedMachine(MachineSpec(physical_memory=1 << 20))
        meter = Meter()
        meter.begin_phase("build", sequential_fraction=0.3)
        meter.add_ops(1000, bytes_touched=1 << 19)
        meter.on_structure_built(1 << 19)
        meter.begin_phase("mine", sequential_fraction=0.5)
        meter.add_ops(5000, bytes_touched=1 << 18)
        estimate = machine.estimate(meter)
        assert estimate.total_seconds == pytest.approx(
            estimate.cpu_seconds + estimate.io_seconds + estimate.paging_seconds
        )
        assert set(estimate.per_phase) == {"build", "mine"}
        assert not estimate.thrashed

    def test_thrashed_flag(self):
        machine = SimulatedMachine(MachineSpec(physical_memory=1 << 10))
        meter = Meter()
        meter.begin_phase("build")
        meter.on_structure_built(1 << 20)
        meter.add_ops(10, bytes_touched=1 << 20)
        assert machine.estimate(meter).thrashed

    def test_more_memory_never_slower(self):
        meter = Meter()
        meter.begin_phase("build", sequential_fraction=0.2)
        meter.on_structure_built(8 << 20)
        meter.add_ops(100_000, bytes_touched=8 << 20)
        small = SimulatedMachine(MachineSpec(physical_memory=1 << 20)).estimate(meter)
        large = SimulatedMachine(MachineSpec(physical_memory=16 << 20)).estimate(meter)
        assert large.total_seconds < small.total_seconds
        assert not large.thrashed
        assert small.thrashed
