"""Tests for cost-model calibration."""

from repro.machine import MachineSpec, Meter, SimulatedMachine
from repro.machine.calibrate import calibrate_op_seconds, measure_reference_run


class TestMeasureReference:
    def test_returns_positive(self):
        wall, ops = measure_reference_run(n_transactions=150)
        assert wall > 0
        assert ops > 100

    def test_deterministic_ops(self):
        __, ops_a = measure_reference_run(n_transactions=150, seed=3)
        __, ops_b = measure_reference_run(n_transactions=150, seed=3)
        assert ops_a == ops_b


class TestCalibration:
    def test_fitted_spec(self):
        spec = calibrate_op_seconds(n_transactions=150)
        # Python per-op cost is far above the default C++-grade 20 ns.
        assert spec.op_seconds > MachineSpec().op_seconds
        assert spec.dram_seconds_per_byte == 0.0
        # Paging parameters untouched.
        assert spec.disk_latency == MachineSpec().disk_latency

    def test_preserves_base_memory(self):
        base = MachineSpec(physical_memory=1 << 20)
        spec = calibrate_op_seconds(base, n_transactions=150)
        assert spec.physical_memory == 1 << 20

    def test_in_core_estimate_tracks_wall_clock(self):
        spec = calibrate_op_seconds(n_transactions=300)
        wall, ops = measure_reference_run(n_transactions=300)
        meter = Meter()
        meter.begin_phase("run")
        meter.add_ops(ops)
        estimate = SimulatedMachine(spec).estimate(meter)
        # Same workload class: the estimate lands within 4x of reality
        # (interpreter noise and workload variation allowed for).
        assert wall / 4 < estimate.total_seconds < wall * 4
