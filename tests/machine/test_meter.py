"""Unit tests for the run meter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Meter


@st.composite
def meters(draw):
    """A Meter driven through a random but physically consistent history.

    Structures are never freed beyond what was built, so ``live_bytes``
    stays non-negative — the precondition for merge's peak estimate being
    a true upper bound.
    """
    meter = Meter()
    built_total = 0
    for __ in range(draw(st.integers(min_value=0, max_value=4))):
        meter.begin_phase(
            draw(st.sampled_from(["build", "convert", "mine", "run"])),
            draw(st.sampled_from([0.2, 0.5, 0.9])),
        )
        meter.add_ops(
            draw(st.integers(min_value=0, max_value=200)),
            bytes_touched=draw(st.integers(min_value=0, max_value=4096)),
        )
        meter.add_io(draw(st.integers(min_value=0, max_value=512)))
        built = draw(st.integers(min_value=0, max_value=1024))
        meter.on_structure_built(built)
        built_total += built
        freed = draw(st.integers(min_value=0, max_value=built_total))
        meter.on_structure_freed(freed)
        built_total -= freed
    return meter


def _counter_totals(meter):
    return {
        "ops": sum(p.ops for p in meter.phases),
        "bytes_touched": sum(p.bytes_touched for p in meter.phases),
        "io_bytes": sum(p.io_bytes for p in meter.phases),
        "total_ops": meter.total_ops,
        "integral": meter._integral,
        "live": meter.live_bytes,
    }


class TestMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(meters(), meters())
    def test_counters_sum_exactly(self, a, b):
        expected = {
            key: _counter_totals(a)[key] + _counter_totals(b)[key]
            for key in _counter_totals(a)
        }
        a.merge(b)
        assert _counter_totals(a) == expected

    @settings(max_examples=60, deadline=None)
    @given(meters(), meters())
    def test_peak_at_least_each_input(self, a, b):
        peaks = (a.peak_bytes, b.peak_bytes)
        a.merge(b)
        assert a.peak_bytes >= max(peaks)

    @settings(max_examples=60, deadline=None)
    @given(meters(), meters(), meters())
    def test_commutative_fields_are_order_insensitive(self, base, x, y):
        def merged(first, second):
            target = Meter.from_record(base.to_record())
            target.merge(Meter.from_record(first.to_record()))
            target.merge(Meter.from_record(second.to_record()))
            return target

        xy = merged(x, y)
        yx = merged(y, x)
        # The summed counters are commutative. peak_bytes and
        # footprint_bytes are not (both are conservative estimates that
        # depend on the live bytes at merge time) and are excluded.
        assert _counter_totals(xy) == _counter_totals(yx)

        def by_phase(meter):
            phases = {}
            for p in meter.phases:
                entry = phases.setdefault(p.name, [0, 0, 0])
                entry[0] += p.ops
                entry[1] += p.bytes_touched
                entry[2] += p.io_bytes
            return phases

        assert by_phase(xy) == by_phase(yx)

    @settings(max_examples=60, deadline=None)
    @given(meters())
    def test_record_roundtrip_is_merge_equivalent(self, meter):
        clone = Meter.from_record(meter.to_record())
        assert _counter_totals(clone) == _counter_totals(meter)
        assert clone.peak_bytes == meter.peak_bytes
        assert [p.name for p in clone.phases] == [p.name for p in meter.phases]

        target_a = Meter()
        target_a.merge(meter)
        target_b = Meter()
        target_b.merge(clone)
        assert _counter_totals(target_a) == _counter_totals(target_b)
        assert target_a.peak_bytes == target_b.peak_bytes


class TestStructureTracking:
    def test_live_and_peak(self):
        meter = Meter()
        meter.on_structure_built(100)
        meter.on_structure_built(50)
        meter.on_structure_freed(100)
        assert meter.live_bytes == 50
        assert meter.peak_bytes == 150

    def test_peak_never_decreases(self):
        meter = Meter()
        meter.on_structure_built(80)
        meter.on_structure_freed(80)
        meter.on_structure_built(10)
        assert meter.peak_bytes == 80

    def test_phase_footprint_tracks_max(self):
        meter = Meter()
        phase = meter.begin_phase("build")
        meter.on_structure_built(30)
        meter.on_structure_built(20)
        meter.on_structure_freed(20)
        assert phase.footprint_bytes == 50

    def test_new_phase_starts_at_current_live(self):
        meter = Meter()
        meter.on_structure_built(40)
        phase = meter.begin_phase("mine")
        assert phase.footprint_bytes == 40


class TestOps:
    def test_ops_accrue_to_current_phase(self):
        meter = Meter()
        meter.begin_phase("a")
        meter.add_ops(10, bytes_touched=100)
        meter.begin_phase("b")
        meter.add_ops(5)
        assert meter.phases[0].ops == 10
        assert meter.phases[0].bytes_touched == 100
        assert meter.phases[1].ops == 5
        assert meter.total_ops == 15

    def test_implicit_phase(self):
        meter = Meter()
        meter.add_ops(3)
        assert meter.phases[0].name == "run"

    def test_io_bytes(self):
        meter = Meter()
        meter.begin_phase("scan")
        meter.add_io(1000)
        assert meter.phases[0].io_bytes == 1000


class TestAverage:
    def test_weighted_average(self):
        meter = Meter()
        meter.on_structure_built(100)
        meter.add_ops(10)  # 10 ops at 100 bytes
        meter.on_structure_built(100)
        meter.add_ops(10)  # 10 ops at 200 bytes
        assert meter.avg_bytes == 150.0

    def test_average_without_ops(self):
        meter = Meter()
        meter.on_structure_built(64)
        assert meter.avg_bytes == 64.0


class TestCfpHooks:
    def test_conversion_overlap_counts_in_peak(self):
        from repro.core.conversion import convert
        from repro.core.ternary import TernaryCfpTree

        tree = TernaryCfpTree(3)
        tree.insert([1, 2, 3])
        tree.insert([1, 2])
        array = convert(tree)
        meter = Meter()
        meter.on_build(tree)
        meter.on_conversion(tree, array)
        # §3.5: both structures coexist during conversion.
        assert meter.peak_bytes == tree.memory_bytes + array.memory_bytes
        assert meter.live_bytes == array.memory_bytes

    def test_cfp_growth_run_balances_structures(self):
        from repro.core.cfp_growth import mine_rank_transactions
        from repro.fptree.growth import CountCollector
        from repro.util.items import prepare_transactions
        from tests.conftest import random_database

        db = random_database(4, n_transactions=80, n_items=12, max_length=8)
        table, transactions = prepare_transactions(db, 2)
        meter = Meter()
        meter.begin_phase("run")
        mine_rank_transactions(
            transactions, len(table), 2, CountCollector(), meter=meter
        )
        # Every conditional structure must have been freed; only the initial
        # CFP-array may remain live.
        assert meter.peak_bytes > 0
        assert 0 <= meter.live_bytes <= meter.peak_bytes


class TestMerge:
    def test_counters_sum_into_matching_phase(self):
        parent = Meter()
        parent.begin_phase("mine")
        parent.add_ops(10, bytes_touched=100)
        worker = Meter()
        worker.begin_phase("mine")
        worker.add_ops(5, bytes_touched=50)
        worker.add_io(7)
        parent.merge(worker)
        assert len(parent.phases) == 1
        assert parent.phases[0].ops == 15
        assert parent.phases[0].bytes_touched == 150
        assert parent.phases[0].io_bytes == 7
        assert parent.total_ops == 15

    def test_rename_to_folds_default_phase_into_mine(self):
        # Workers meter into an implicit "run" phase; the parent lands it
        # in its current "mine" phase via rename_to.
        parent = Meter()
        parent.begin_phase("mine")
        worker = Meter()
        worker.add_ops(3)  # implicit "run" phase
        parent.merge(worker, rename_to="mine")
        assert [p.name for p in parent.phases] == ["mine"]
        assert parent.phases[0].ops == 3

    def test_unmatched_phase_is_created(self):
        parent = Meter()
        worker = Meter()
        worker.begin_phase("scan", 1.0)
        worker.add_ops(4)
        parent.merge(worker)
        assert [p.name for p in parent.phases] == ["scan"]
        assert parent.phases[0].sequential_fraction == 1.0

    def test_footprint_takes_max(self):
        parent = Meter()
        phase = parent.begin_phase("mine")
        parent.on_structure_built(100)
        worker = Meter()
        worker.begin_phase("mine")
        worker.on_structure_built(300)
        parent.merge(worker)
        assert phase.footprint_bytes == 300

    def test_peak_is_conservative_stacking(self):
        parent = Meter()
        parent.on_structure_built(100)  # live 100, peak 100
        worker = Meter()
        worker.on_structure_built(80)
        worker.on_structure_freed(80)  # live 0, peak 80
        parent.merge(worker)
        assert parent.peak_bytes == 180  # parent's live + worker's peak
        assert parent.live_bytes == 100  # worker freed everything it built

    def test_merge_preserves_avg_weighting(self):
        a = Meter()
        a.on_structure_built(100)
        a.add_ops(10)
        b = Meter()
        b.on_structure_built(200)
        b.add_ops(10)
        a.merge(b)
        # Combined integral: 10*100 + 10*200 over 20 ops.
        assert a.avg_bytes == 150.0

    def test_merging_several_workers_accumulates(self):
        parent = Meter()
        parent.begin_phase("mine")
        for __ in range(3):
            worker = Meter()
            worker.begin_phase("mine")
            worker.add_ops(2, bytes_touched=5)
            parent.merge(worker)
        assert parent.phases[0].ops == 6
        assert parent.phases[0].bytes_touched == 15
