"""The paper's core claim in one script: CFP structures vs the FP-tree.

Builds the FP-tree (40 B/node baseline), the ternary CFP-tree, and the
CFP-array on a webdocs-shaped dataset, reports the exact byte sizes and
compression factors (Figure 6's metric), and prices a full mining run on a
memory-constrained simulated machine for both FP-growth and CFP-growth
(Figure 7's story).

Run with::

    python examples/memory_budget.py
"""

from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.datasets import make_dataset
from repro.experiments.drivers import run_metered
from repro.experiments.report import human_bytes, seconds
from repro.fptree.ternary import PAPER_BASELINE_NODE_SIZE, TernaryFPTree
from repro.machine import MachineSpec
from repro.util.items import prepare_transactions


def main() -> None:
    database = make_dataset("webdocs", n_transactions=600, seed=3)
    min_support = 12
    table, transactions = prepare_transactions(database, min_support)
    print(
        f"dataset: {len(database)} long transactions, "
        f"{len(table)} frequent items at support {min_support}\n"
    )

    fp = TernaryFPTree.from_rank_transactions(transactions, len(table))
    cfp = TernaryCfpTree.from_rank_transactions(transactions, len(table))
    array = convert(cfp)

    nodes = fp.node_count
    print(f"prefix tree: {nodes:,} nodes")
    rows = [
        ("FP-tree (40 B/node baseline)", fp.baseline_memory_bytes),
        ("ternary CFP-tree", cfp.memory_bytes),
        ("CFP-array", array.memory_bytes),
    ]
    for name, size in rows:
        factor = fp.baseline_memory_bytes / size
        print(
            f"  {name:<30} {human_bytes(size):>10}   "
            f"{size / nodes:5.2f} B/node   {factor:5.1f}x vs baseline"
        )

    stats = cfp.physical_stats()
    print(
        f"\nCFP-tree internals: {stats.standard_nodes:,} standard nodes, "
        f"{stats.chain_nodes:,} chains holding {stats.chain_entries:,} "
        f"entries, {stats.embedded_leaves:,} embedded leaves"
    )

    # Price a full run on a machine whose memory is smaller than the
    # FP-tree but larger than the CFP structures.
    physical = int(fp.baseline_memory_bytes * 0.6)
    spec = MachineSpec(physical_memory=physical)
    print(f"\nsimulated machine with {human_bytes(physical)} physical memory:")
    for algorithm in ("fp-growth", "cfp-growth"):
        run = run_metered(
            algorithm, transactions, len(table), min_support, 10_000, spec
        )
        flag = "THRASHING" if run.estimate.thrashed else "in core"
        print(
            f"  {algorithm:<12} {seconds(run.total_seconds):>10}  "
            f"peak {human_bytes(run.peak_bytes):>10}  [{flag}]  "
            f"{run.itemset_count:,} itemsets"
        )


if __name__ == "__main__":
    main()
