"""Web-usage mining on click-stream data (paper §1's application class).

Generates kosarak-shaped sessions, streams them through the
double-buffered FIMI reader (as the paper's I/O path does), and mines
frequently co-visited page sets, comparing several of the library's
algorithms on the same data.

Run with::

    python examples/weblog_sessions.py
"""

import tempfile
import time
from pathlib import Path

from repro.algorithms import get_miner
from repro.datasets import DoubleBufferedReader, make_dataset, write_fimi

MIN_SUPPORT = 60


def main() -> None:
    sessions = make_dataset("kosarak", n_transactions=5000, seed=42)

    # Round-trip through the FIMI text format with read-ahead, like the
    # paper's input pipeline (§4.1).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sessions.fimi"
        write_fimi(path, sessions)
        size = path.stat().st_size
        with DoubleBufferedReader(path) as reader:
            loaded = list(reader)
    print(
        f"{len(loaded)} sessions loaded from a {size / 1024:.0f} kB FIMI "
        f"file via the double-buffered reader\n"
    )

    reference = None
    for name in ("cfp-growth", "fp-growth", "eclat", "lcm"):
        miner = get_miner(name)
        started = time.perf_counter()
        results = miner.mine(loaded, MIN_SUPPORT)
        elapsed = time.perf_counter() - started
        canonical = {frozenset(i): s for i, s in results}
        if reference is None:
            reference = canonical
        agreement = "ok" if canonical == reference else "MISMATCH"
        print(
            f"  {name:<12} {len(results):5d} itemsets  "
            f"{elapsed * 1000:8.1f} ms  [{agreement}]"
        )

    pairs = sorted(
        ((s, i) for i, s in reference.items() if len(i) == 2), reverse=True
    )
    print("\nmost co-visited page pairs:")
    for support, pages in pairs[:8]:
        a, b = sorted(pages)
        print(f"  page {a:>4} + page {b:>4}: {support} sessions")


if __name__ == "__main__":
    main()
