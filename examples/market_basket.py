"""Market-basket analysis on retail-like data (the paper's §1 motivation).

Mines a retail-shaped dataset with CFP-growth, then derives
"customers who bought X also bought Y" association rules from the
frequent-itemset supports (confidence = support(X ∪ Y) / support(X)).

Run with::

    python examples/market_basket.py
"""

from repro import mine_frequent_itemsets
from repro.datasets import make_dataset

MIN_SUPPORT = 40
MIN_CONFIDENCE = 0.4


def main() -> None:
    baskets = make_dataset("retail", n_transactions=3000, seed=5)
    print(f"mining {len(baskets)} baskets (min support {MIN_SUPPORT})...")
    result = mine_frequent_itemsets(baskets, MIN_SUPPORT)
    print(f"found {len(result)} frequent itemsets\n")

    supports = {frozenset(itemset): s for itemset, s in result}

    # Rules X -> y from every frequent pair/triple.
    rules = []
    for itemset, support in result:
        if len(itemset) < 2:
            continue
        for consequent in itemset:
            antecedent = frozenset(itemset) - {consequent}
            confidence = support / supports[antecedent]
            if confidence >= MIN_CONFIDENCE:
                rules.append((confidence, support, sorted(antecedent), consequent))

    rules.sort(reverse=True)
    print(f"top rules (confidence >= {MIN_CONFIDENCE:.0%}):")
    for confidence, support, antecedent, consequent in rules[:15]:
        basket = ", ".join(f"item{i}" for i in antecedent)
        print(
            f"  bought {{{basket}}} -> also buys item{consequent} "
            f"(confidence {confidence:.0%}, {support} baskets)"
        )


if __name__ == "__main__":
    main()
