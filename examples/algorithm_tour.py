"""Tour of every miner in the library on one dense dataset.

Runs all registered algorithms (from Apriori to CFP-growth) on a
connect-shaped dense dataset, verifies they agree, and shows each one's
characteristic structure footprint through the metered drivers.

Run with::

    python examples/algorithm_tour.py
"""

import time

from repro.algorithms import get_miner, iter_miners
from repro.experiments.drivers import run_metered
from repro.experiments.report import human_bytes
from repro.datasets import make_dataset
from repro.util.items import prepare_transactions

MIN_SUPPORT = 180

#: Miners excluded from the dense-data tour: the oracle is quadratic in
#: the candidate count and topdown enumerates k-subsets of length-43
#: transactions.
SKIP = {"brute-force", "topdown"}

METERED = (
    "cfp-growth",
    "fp-growth",
    "nonordfp",
    "lcm",
    "afopt",
    "fp-array",
    "fp-growth-tiny",
    "ct-pro",
)


def main() -> None:
    database = make_dataset("connect", n_transactions=800, seed=2)
    print(f"dense dataset: {len(database)} transactions of ~43 items\n")

    print("correctness + wall-clock (pure Python, real time):")
    reference = None
    for name in iter_miners():
        if name in SKIP:
            continue
        started = time.perf_counter()
        results = get_miner(name).mine(database, MIN_SUPPORT)
        elapsed = time.perf_counter() - started
        canonical = {frozenset(i): s for i, s in results}
        if reference is None:
            reference = canonical
        agreement = "ok" if canonical == reference else "MISMATCH"
        print(f"  {name:<16} {len(results):6d} itemsets  {elapsed:7.2f}s  [{agreement}]")

    print("\npeak structure footprint (exact bytes, via the metered drivers):")
    table, transactions = prepare_transactions(database, MIN_SUPPORT)
    for name in METERED:
        run = run_metered(name, transactions, len(table), MIN_SUPPORT, 50_000)
        print(f"  {name:<16} peak {human_bytes(run.peak_bytes):>10}")


if __name__ == "__main__":
    main()
