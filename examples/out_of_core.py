"""Out-of-core and distributed mining — the paper's §5 neighbours, live.

Part 1 writes a CFP-array to disk and mines it through LRU buffer pools
of shrinking size, printing the real page-fault counts (the §4.3 story:
sequential access streams, random access thrashes).

Part 2 runs the same workload through PFP (parallel FP-growth on the
bundled MapReduce substrate) and shows the per-worker memory payoff
against shard duplication.

Run with::

    python examples/out_of_core.py
"""

import tempfile
from pathlib import Path

from repro.core.cfp_growth import mine_array
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.datasets import make_dataset
from repro.distributed import parallel_fp_growth
from repro.fptree.growth import CountCollector
from repro.storage import DiskCfpArray, save_cfp_array
from repro.storage.pagefile import PAGE_SIZE
from repro.util.items import prepare_transactions

MIN_SUPPORT = 50


def main() -> None:
    database = make_dataset("kosarak", n_transactions=4000, seed=8)
    table, transactions = prepare_transactions(database, MIN_SUPPORT)
    tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
    array = convert(tree)
    pages = -(-len(array.buffer) // PAGE_SIZE)
    print(
        f"CFP-array: {array.node_count:,} nodes, "
        f"{len(array.buffer):,} bytes ({pages} pages)\n"
    )

    print("— part 1: mining from disk through an LRU buffer pool —")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "array.cfpa"
        save_cfp_array(array, path)
        for pool_pages in (max(1, pages // 8), max(2, pages // 2), pages + 4):
            with DiskCfpArray(path, pool_pages=pool_pages) as disk:
                collector = CountCollector()
                mine_array(disk, MIN_SUPPORT, collector)
                stats = disk.pool.stats
                print(
                    f"  pool {pool_pages:4d} pages: {stats.faults:8,} faults, "
                    f"hit ratio {stats.hit_ratio:6.1%}, "
                    f"{collector.count} itemsets"
                )

    print("\n— part 2: distributed mining (PFP over MapReduce) —")
    for n_groups in (1, 4, 8):
        result = parallel_fp_growth(database, MIN_SUPPORT, n_groups=n_groups)
        print(
            f"  {n_groups:2d} group(s): largest worker tree "
            f"{result.max_shard_bytes:7,} B, shard duplication "
            f"{result.total_shard_transactions / len(database):4.1f}x, "
            f"{len(result.itemsets)} itemsets"
        )


if __name__ == "__main__":
    main()
