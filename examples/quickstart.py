"""Quickstart: mine frequent itemsets from a handful of baskets.

Run with::

    python examples/quickstart.py
"""

from repro import mine_frequent_itemsets

BASKETS = [
    ["bread", "milk"],
    ["bread", "diapers", "beer", "eggs"],
    ["milk", "diapers", "beer", "cola"],
    ["bread", "milk", "diapers", "beer"],
    ["bread", "milk", "diapers", "cola"],
]


def main() -> None:
    result = mine_frequent_itemsets(BASKETS, min_support=3)

    print(f"{len(result)} itemsets appear in at least 3 of {len(BASKETS)} baskets:\n")
    for itemset, support in sorted(result, key=lambda r: (-r[1], len(r[0]))):
        print(f"  {{{', '.join(sorted(itemset))}}}  support={support}")

    print("\nLookups:")
    print(f"  support of {{beer, diapers}} = {result.support_of({'beer', 'diapers'})}")
    print(f"  pairs: {len(result.of_size(2))}, triples: {len(result.of_size(3))}")


if __name__ == "__main__":
    main()
