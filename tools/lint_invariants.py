#!/usr/bin/env python3
"""Repository invariant linter (compatibility shim).

The checker logic moved into the static-analysis subsystem at
:mod:`repro.analysis.staticcheck` — this entry point remains so existing
invocations (CI, editor hooks, muscle memory) keep working, with the
same CLI, exit codes (0 clean / 1 findings / 2 error) and public names
(``Violation``, ``_FileChecker``, ``lint_file``, ``lint_paths``).

Prefer the full analyzer for new wiring::

    PYTHONPATH=src python -m repro.analysis.staticcheck [paths...]

which also runs the worker-effect (EFF*) and registry-drift (DRIFT*)
passes; this shim runs exactly the INV001–INV008 invariant rules over
the given paths. See docs/static-analysis.md for every rule id.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

if str(SRC_ROOT) not in sys.path:  # standalone invocation without PYTHONPATH
    sys.path.insert(0, str(SRC_ROOT))

from repro.analysis.staticcheck.findings import Finding as Violation  # noqa: E402
from repro.analysis.staticcheck.passes.invariants import (  # noqa: E402
    FileChecker as _FileChecker,
    lint_file,
    lint_paths,
)

__all__ = ["Violation", "_FileChecker", "lint_file", "lint_paths", "main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories (default: src/repro, tools/ and benchmarks/)",
    )
    args = parser.parse_args(argv)
    paths = args.paths or [
        SRC_ROOT / "repro",
        REPO_ROOT / "tools",
        REPO_ROOT / "benchmarks",
    ]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    try:
        violations = lint_paths(paths)
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}:{exc.lineno}", file=sys.stderr)
        return 2
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} invariant violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
