#!/usr/bin/env python3
"""End-to-end incremental-streaming check (the CI incremental-smoke job).

Four legs over one synthetic stream, each exercising the real CLI or the
real server (docs/streaming.md):

1. **byte identity** — ``repro stream`` (fresh process) publishes
   snapshots per batch over a sliding window; the final generation's
   CFP-array must be byte-identical to a from-scratch build over the
   same window with the same frozen item table.
2. **served parity across a flip** — an NDJSON ``ReproServer`` over a
   :class:`FollowingStore` answers support queries while a new
   generation is published under it. Every response must succeed (zero
   drops) and pre-/post-flip answers must equal direct counts over the
   respective windows; the ``stats`` op must show the new generation.
3. **delta.merge chaos** — ``REPRO_FAULTS=delta.merge:kill:times=1``
   kills the streaming process at its first merge; the snapshot
   directory must be left consistent (no manifest, or a loadable one),
   and a clean re-run in the same directory must converge to the
   reference bytes.
4. **snapshot.flip chaos** — a kill between manifest write and rename
   must leave the previous manifest state intact; the re-run must again
   converge to the reference bytes.

``--artifacts-dir DIR`` keeps the work files (traces, snapshot dirs)
under DIR instead of a temp dir, so CI can upload them.

Exit code 0 when every leg holds, 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import tempfile

MIN_SUPPORT = 4
BATCH_SIZE = 60
WINDOW = 3
STREAM = [
    sys.executable,
    "-m",
    "repro",
    "stream",
    "--min-support",
    str(MIN_SUPPORT),
    "--batch-size",
    str(BATCH_SIZE),
    "--window",
    str(WINDOW),
]


def _fail(message: str) -> None:
    print(f"incremental-check: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def _make_dataset(path: str) -> list[list[int]]:
    from repro.datasets.fimi import write_fimi
    from repro.datasets.quest import QuestGenerator

    database = QuestGenerator(
        n_transactions=360,
        avg_transaction_length=8.0,
        avg_pattern_length=4.0,
        n_items=50,
        n_patterns=25,
        seed=77,
    ).generate()
    write_fimi(path, database)
    return database


def _stream(
    dataset: str,
    snapshot_dir: str,
    *args: str,
    env: dict[str, str] | None = None,
    expect_failure: bool = False,
) -> subprocess.CompletedProcess:
    run_env = dict(os.environ)
    run_env["PYTHONPATH"] = "src"
    run_env.update(env or {})
    result = subprocess.run(
        STREAM + [dataset, "--snapshot-dir", snapshot_dir, *args],
        capture_output=True,
        text=True,
        env=run_env,
        timeout=600,
    )
    if expect_failure:
        if result.returncode == 0:
            _fail("chaos stream run succeeded; the injected kill never fired")
    elif result.returncode != 0:
        _fail(
            f"stream {' '.join(args)} exited {result.returncode}:\n"
            f"{result.stderr}"
        )
    return result


def _final_window(database: list[list[int]]) -> list[list[int]]:
    batches = [
        database[start : start + BATCH_SIZE]
        for start in range(0, len(database), BATCH_SIZE)
    ]
    return [t for batch in batches[-WINDOW:] for t in batch]


def _reference_array(database: list[list[int]], window: list[list[int]]):
    """From-scratch CFP-array over ``window`` with the whole-stream table."""
    from repro.core.conversion import convert
    from repro.core.ternary import TernaryCfpTree
    from repro.streaming import CountingPhase

    counting = CountingPhase()
    counting.add_batch(database)
    table = counting.finish(MIN_SUPPORT)
    rank_of = table.rank_of
    ranked = [
        sorted({rank_of[item] for item in transaction if item in rank_of})
        for transaction in window
    ]
    tree = TernaryCfpTree.from_rank_transactions(ranked, len(table))
    return convert(tree), table


def _published_array(snapshot_dir: str):
    from repro.storage import load_cfp_array
    from repro.streaming.snapshots import SnapshotManager

    state = SnapshotManager(snapshot_dir).current()
    if state is None:
        _fail(f"{snapshot_dir}: no manifest after a clean stream run")
    assert state is not None
    return state[0], load_cfp_array(state[1])


def _assert_identical(published, reference, leg: str) -> None:
    if (
        bytes(published.buffer) != bytes(reference.buffer)
        or published.starts != reference.starts
    ):
        _fail(f"{leg}: published array is not byte-identical to the rebuild")


def _identity_leg(dataset: str, database: list[list[int]], workdir: str):
    snapshot_dir = os.path.join(workdir, "snaps-identity")
    _stream(dataset, snapshot_dir)
    generation, published = _published_array(snapshot_dir)
    reference, table = _reference_array(database, _final_window(database))
    _assert_identical(published, reference, "identity leg")
    print(
        f"incremental-check: generation {generation} byte-identical to "
        f"from-scratch rebuild ({published.node_count} nodes)"
    )
    return reference, table


def _count_support(window: list[list[int]], probe: list) -> int:
    wanted = set(probe)
    return sum(1 for transaction in window if wanted <= set(transaction))


async def _drive_flip(server, store, manager, miner, table, batches) -> None:
    probe = [table.item_of[1]]
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)

    async def ask(payload: dict) -> dict:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        return json.loads(await reader.readline())

    window_pre = [t for b in batches[:WINDOW] for t in b]
    expected_pre = _count_support(window_pre, probe)
    for __ in range(50):
        response = await ask({"op": "support", "items": probe})
        if not response.get("ok"):
            _fail(f"pre-flip query failed: {response}")
        if response["result"] != expected_pre:
            _fail(
                f"pre-flip support {response['result']} != direct count "
                f"{expected_pre}"
            )

    # Publish the next window under live traffic.
    miner.append_batch(batches[WINDOW])
    new_generation = manager.publish(
        miner.to_array(), table, miner.window_transactions
    )
    window_post = [t for b in batches[1 : WINDOW + 1] for t in b]
    expected_post = _count_support(window_post, probe)
    flipped = False
    for __ in range(400):
        response = await ask({"op": "support", "items": probe})
        if not response.get("ok"):
            _fail(f"query dropped during flip: {response}")
        if response["result"] == expected_post:
            flipped = True
            break
        if response["result"] != expected_pre:
            _fail(
                f"mid-flip support {response['result']} matches neither "
                f"window ({expected_pre} pre, {expected_post} post)"
            )
        await asyncio.sleep(0.02)
    if not flipped:
        _fail("server never served the new generation")
    stats = await ask({"op": "stats"})
    if not stats.get("ok") or stats["result"].get("generation") != new_generation:
        _fail(f"stats after flip does not show generation {new_generation}: {stats}")
    writer.close()
    await writer.wait_closed()
    print(
        f"incremental-check: served parity across flip to generation "
        f"{new_generation} (zero dropped queries)"
    )


def _flip_leg(database: list[list[int]], workdir: str) -> None:
    from repro.serving.follow import FollowingStore
    from repro.serving.server import ReproServer
    from repro.streaming import CountingPhase, IncrementalMiner, SnapshotManager

    snapshot_dir = os.path.join(workdir, "snaps-flip")
    batches = [
        database[start : start + BATCH_SIZE]
        for start in range(0, len(database), BATCH_SIZE)
    ]
    counting = CountingPhase()
    counting.add_batch(database)
    table = counting.finish(MIN_SUPPORT)
    manager = SnapshotManager(snapshot_dir)
    miner = IncrementalMiner(table, window=WINDOW)
    for batch in batches[:WINDOW]:
        miner.append_batch(batch)
    manager.publish(miner.to_array(), table, miner.window_transactions)

    async def run() -> None:
        with FollowingStore(snapshot_dir, pool_pages=32) as store:
            store.start_following(0.05)
            server = ReproServer(store, workers=2)
            await server.start()
            try:
                await _drive_flip(server, store, manager, miner, table, batches)
            finally:
                await server.stop()

    asyncio.run(run())


def _chaos_leg(
    dataset: str,
    reference,
    workdir: str,
    site: str,
) -> None:
    from repro.streaming.snapshots import SnapshotManager

    snapshot_dir = os.path.join(workdir, f"snaps-{site.replace('.', '-')}")
    state_dir = tempfile.mkdtemp(prefix="faults-", dir=workdir)
    result = _stream(
        dataset,
        snapshot_dir,
        env={
            "REPRO_FAULTS": f"{site}:kill:times=1",
            "REPRO_FAULTS_STATE": state_dir,
        },
        expect_failure=True,
    )
    # Whatever the kill left behind must be consistent: either no
    # manifest yet, or a manifest naming a loadable generation.
    state = SnapshotManager(snapshot_dir).current()
    if state is not None:
        from repro.storage import load_cfp_array

        load_cfp_array(state[1])
    _stream(dataset, snapshot_dir)
    __, published = _published_array(snapshot_dir)
    _assert_identical(published, reference, f"{site} recovery leg")
    print(
        f"incremental-check: {site} kill (exit {result.returncode}) left a "
        "consistent directory; clean re-run converged to reference bytes"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifacts-dir",
        default="",
        metavar="DIR",
        help="keep work files under DIR (CI uploads them) instead of a temp dir",
    )
    args = parser.parse_args()
    if args.artifacts_dir:
        workdir = os.path.abspath(args.artifacts_dir)
        os.makedirs(workdir, exist_ok=True)
    else:
        workdir = tempfile.mkdtemp(prefix="repro-incremental-check-")
    dataset = os.path.join(workdir, "stream.fimi")
    database = _make_dataset(dataset)

    reference, __ = _identity_leg(dataset, database, workdir)
    _flip_leg(database, workdir)
    _chaos_leg(dataset, reference, workdir, "delta.merge")
    _chaos_leg(dataset, reference, workdir, "snapshot.flip")

    print("incremental-check: OK")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, "src")
    sys.exit(main())
