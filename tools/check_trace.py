#!/usr/bin/env python3
"""Schema validator for ``--trace`` JSONL files (docs/observability.md).

Checks, per file:

* line 1 is a ``meta`` record with the supported ``version`` and a
  ``spans`` count matching the number of span lines;
* every span line carries the required keys with sane types, a unique
  ``id``, a ``parent`` that is ``null`` or another span's id, and
  non-negative ``t0``/``dur`` (children close before their parents, so a
  span's parent may legitimately appear *later* in the file);
* metric lines name a ``counter`` or ``gauge`` with a numeric value — or
  a ``histogram`` whose value is a summary object of numeric fields
  including a ``count`` — and appear only after all span lines;
* no unknown record types.

Usage::

    python tools/check_trace.py TRACE.jsonl [TRACE2.jsonl ...]

Exit codes: 0 valid, 1 schema violations (printed one per line),
2 usage error / unreadable file. Importable: :func:`validate_trace`
returns the problem list for one file.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Trace schema versions this validator understands.
SUPPORTED_VERSIONS = (1,)

_SPAN_KEYS = {
    "id": int,
    "name": str,
    "t0": (int, float),
    "dur": (int, float),
    "attrs": dict,
}

_METRIC_KINDS = ("counter", "gauge", "histogram")


def _check_span(line_no: int, record: dict, problems: list[str]) -> int | None:
    """Validate one span record; returns its id when usable."""
    for key, types in _SPAN_KEYS.items():
        if key not in record:
            problems.append(f"line {line_no}: span missing key {key!r}")
            return None
        if not isinstance(record[key], types) or isinstance(record[key], bool):
            problems.append(
                f"line {line_no}: span key {key!r} has type "
                f"{type(record[key]).__name__}"
            )
            return None
    parent = record.get("parent")
    if parent is not None and (not isinstance(parent, int) or isinstance(parent, bool)):
        problems.append(f"line {line_no}: span parent must be null or an int id")
    worker = record.get("worker")
    if worker is not None and (not isinstance(worker, int) or isinstance(worker, bool)):
        problems.append(f"line {line_no}: span worker must be null or an int")
    if record["t0"] < 0:
        problems.append(f"line {line_no}: span t0 is negative")
    if record["dur"] < 0:
        problems.append(f"line {line_no}: span dur is negative")
    return record["id"]


def validate_trace(path: str | Path) -> list[str]:
    """All schema problems in one trace file (empty list = valid)."""
    problems: list[str] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        return ["file is empty"]
    spans: dict[int, int | None] = {}  # id -> parent
    declared_spans: int | None = None
    seen_metric = False
    for line_no, raw in enumerate(lines, start=1):
        if not raw.strip():
            problems.append(f"line {line_no}: blank line")
            continue
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            problems.append(f"line {line_no}: not JSON ({exc.msg})")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {line_no}: record is not an object")
            continue
        kind = record.get("type")
        if line_no == 1:
            if kind != "meta":
                problems.append("line 1: first record must be the meta line")
                continue
            version = record.get("version")
            if version not in SUPPORTED_VERSIONS:
                problems.append(f"line 1: unsupported trace version {version!r}")
            if not isinstance(record.get("spans"), int):
                problems.append("line 1: meta 'spans' count missing or not an int")
            else:
                declared_spans = record["spans"]
            continue
        if kind == "meta":
            problems.append(f"line {line_no}: duplicate meta record")
        elif kind == "span":
            if seen_metric:
                problems.append(f"line {line_no}: span appears after metric lines")
            span_id = _check_span(line_no, record, problems)
            if span_id is not None:
                if span_id in spans:
                    problems.append(f"line {line_no}: duplicate span id {span_id}")
                spans[span_id] = record.get("parent")
        elif kind == "metric":
            seen_metric = True
            metric_kind = record.get("kind")
            if metric_kind not in _METRIC_KINDS:
                problems.append(
                    f"line {line_no}: metric kind must be one of {_METRIC_KINDS}"
                )
            if not isinstance(record.get("name"), str):
                problems.append(f"line {line_no}: metric name must be a string")
            value = record.get("value")
            if metric_kind == "histogram":
                if (
                    not isinstance(value, dict)
                    or not isinstance(value.get("count"), int)
                    or not all(
                        isinstance(v, (int, float)) and not isinstance(v, bool)
                        for v in value.values()
                    )
                ):
                    problems.append(
                        f"line {line_no}: histogram value must be a summary "
                        "object of numeric fields with an int 'count'"
                    )
            elif not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"line {line_no}: metric value must be numeric")
        else:
            problems.append(f"line {line_no}: unknown record type {kind!r}")
    if declared_spans is not None and declared_spans != len(spans):
        problems.append(
            f"meta declares {declared_spans} spans but the file has {len(spans)}"
        )
    for span_id, parent in spans.items():
        if parent is not None and parent not in spans:
            problems.append(f"span {span_id} references unknown parent {parent}")
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: check_trace.py TRACE.jsonl [...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        try:
            problems = validate_trace(path)
        except OSError as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            return 2
        for problem in problems:
            print(f"{path}: {problem}")
            failed = True
        if not problems:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
