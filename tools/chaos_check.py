#!/usr/bin/env python3
"""End-to-end chaos check: injected failures must not change output.

The CI chaos job runs this script. It mines one synthetic dataset four
ways through the real CLI (each leg a fresh process, like a real run):

1. **serial** — ``--jobs 1``; the reference stdout.
2. **healthy parallel** — ``--jobs 2 --build-jobs 2``; must match byte
   for byte.
3. **chaos parallel** — same, but ``REPRO_FAULTS`` kills one worker in
   the build phase and one in the mine phase (``times=1`` held across
   processes via ``REPRO_FAULTS_STATE``). Must match byte for byte, and
   the trace must show the supervisor actually earned it: nonzero
   ``parallel.retries`` and ``parallel.worker_deaths``.
4. **degraded parallel** — unlimited kills with ``--max-retries 0``;
   must match byte for byte with ``parallel.degraded_serial`` in the
   trace, proving the serial fallback engaged instead of the run dying
   with a BrokenProcessPool.

A fifth leg re-runs leg 4 with ``--no-fallback`` and asserts the run
*fails* — the flag must disable the degraded path.

Exit code 0 when every leg holds, 1 with a diagnostic otherwise.
See docs/robustness.md.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

MIN_SUPPORT = 3
MINE = [sys.executable, "-m", "repro", "mine", "--min-support", str(MIN_SUPPORT)]


def _fail(message: str) -> None:
    print(f"chaos-check: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def _make_dataset(path: str) -> None:
    from repro.datasets.fimi import write_fimi
    from repro.datasets.quest import QuestGenerator

    database = QuestGenerator(
        n_transactions=600,
        avg_transaction_length=8.0,
        avg_pattern_length=4.0,
        n_items=60,
        n_patterns=30,
        seed=42,
    ).generate()
    write_fimi(path, database)


def _mine(dataset: str, *args: str, env: dict[str, str] | None = None) -> str:
    """Run one CLI mine leg; returns its stdout (the itemset listing)."""
    run_env = dict(os.environ)
    run_env["PYTHONPATH"] = "src"
    # Tiny CI datasets sit below the fan-out threshold; the whole point
    # here is exercising the real parallel machinery.
    run_env["REPRO_PARALLEL_MIN_BYTES"] = "0"
    run_env.update(env or {})
    result = subprocess.run(
        MINE + [dataset, *args],
        capture_output=True,
        text=True,
        env=run_env,
        timeout=600,
    )
    if result.returncode != 0:
        _fail(
            f"mine {' '.join(args)} exited {result.returncode}:\n{result.stderr}"
        )
    return result.stdout


def _trace_counters(path: str) -> dict[str, int]:
    counters: dict[str, int] = {}
    with open(path, encoding="ascii") as handle:
        for line in handle:
            record = json.loads(line)
            if record.get("type") == "metric" and record.get("kind") == "counter":
                counters[record["name"]] = record["value"]
    return counters


def _expect(counters: dict[str, int], name: str, leg: str) -> None:
    if counters.get(name, 0) <= 0:
        _fail(f"{leg}: expected nonzero {name} in trace, got {counters}")


def main() -> int:
    parser = argparse.ArgumentParser(description="chaos-engineering smoke check")
    parser.add_argument(
        "--artifacts-dir",
        default="",
        metavar="DIR",
        help="keep work files (trace JSONL, datasets) under DIR so CI can "
        "upload them, instead of a throwaway temp dir",
    )
    args = parser.parse_args()
    if args.artifacts_dir:
        workdir = os.path.abspath(args.artifacts_dir)
        os.makedirs(workdir, exist_ok=True)
    else:
        workdir = tempfile.mkdtemp(prefix="repro-chaos-check-")
    dataset = os.path.join(workdir, "chaos.fimi")
    _make_dataset(dataset)
    parallel = ["--jobs", "2", "--build-jobs", "2"]

    serial = _mine(dataset)
    print(f"chaos-check: serial reference: {len(serial.splitlines())} itemsets")

    healthy = _mine(dataset, *parallel)
    if healthy != serial:
        _fail("healthy parallel output differs from serial")
    print("chaos-check: healthy parallel identical")

    chaos_trace = os.path.join(workdir, "chaos.jsonl")
    chaos = _mine(
        dataset,
        *parallel,
        "--trace",
        chaos_trace,
        env={
            "REPRO_FAULTS": "build.worker:kill:times=1;mine.worker:kill:times=1",
            "REPRO_FAULTS_STATE": tempfile.mkdtemp(prefix="faults-", dir=workdir),
        },
    )
    if chaos != serial:
        _fail("chaos parallel output differs from serial")
    counters = _trace_counters(chaos_trace)
    # (`faultinject.fired` is counted in the worker that fired it, and a
    # killed worker takes its registry down with it — only supervisor-side
    # counters are observable for kill faults.)
    _expect(counters, "parallel.retries", "chaos leg")
    _expect(counters, "parallel.worker_deaths", "chaos leg")
    print(
        "chaos-check: one worker killed per phase, output identical "
        f"(retries={counters['parallel.retries']}, "
        f"deaths={counters['parallel.worker_deaths']})"
    )

    degraded_trace = os.path.join(workdir, "degraded.jsonl")
    degraded = _mine(
        dataset,
        *parallel,
        "--max-retries",
        "0",
        "--trace",
        degraded_trace,
        env={"REPRO_FAULTS": "build.worker:kill;mine.worker:kill"},
    )
    if degraded != serial:
        _fail("degraded-serial output differs from serial")
    counters = _trace_counters(degraded_trace)
    _expect(counters, "parallel.degraded_serial", "degraded leg")
    print(
        "chaos-check: retries exhausted, degraded to serial "
        f"(degraded_serial={counters['parallel.degraded_serial']})"
    )

    run_env = dict(os.environ)
    run_env.update(
        PYTHONPATH="src",
        REPRO_PARALLEL_MIN_BYTES="0",
        REPRO_FAULTS="build.worker:kill;mine.worker:kill",
    )
    refused = subprocess.run(
        MINE + [dataset, *parallel, "--max-retries", "0", "--no-fallback"],
        capture_output=True,
        text=True,
        env=run_env,
        timeout=600,
    )
    if refused.returncode == 0:
        _fail("--no-fallback run succeeded; it must fail when retries exhaust")
    print("chaos-check: --no-fallback correctly refused to degrade")

    print("chaos-check: OK")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, "src")
    sys.exit(main())
